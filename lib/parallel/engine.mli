(** The multicore query-serving engine — Theorem 3's contention bound as
    measured hardware traffic.

    The sequential harness ({!Lc_cellprobe.Contention},
    {!Lc_cellprobe.Concurrency}) {e counts} or {e simulates} the probes
    that concurrent queries would aim at each cell. This engine runs
    them: [m] OCaml 5 domains issue membership queries against one
    shared table through the reentrant {!Lc_dict.Dict_intf.S} core,
    every probe does a fetch-and-add on a per-cell [Atomic.t] counter,
    and an optional per-cell spinlock makes same-cell visits genuinely
    serialise — the cost model a shared-memory multiprocessor imposes on
    a contended line. What comes out is wall-clock throughput plus the
    exact per-cell probe tally, so "contention [Theta(sqrt n)] vs
    [O(1/n)]" (paper Section 1.3) becomes a measured gap rather than a
    counted one.

    All randomness is per-domain ([Rng.t] is not shared), table cells
    are written only at construction time, and the probing mode never
    touches the table's sequential counters, so runs are data-race
    free. The machine's core count only affects the wall-clock columns;
    probe counts are exact regardless. *)

type cost =
  | Free
      (** Probes cost one fetch-and-add; contention shows up only
          through cache-line traffic on the counters themselves. *)
  | Spinlock of { hold : int }
      (** Each probe acquires a per-cell test-and-set spinlock and holds
          it for [hold] extra [Domain.cpu_relax] iterations: concurrent
          visits to one cell serialise, so a structure with a
          contention-[Theta(1)] cell (binary search's root, unreplicated
          FKS's parameter cell) pays wall-clock time proportional to its
          hot-spot traffic. *)

type result = {
  name : string;  (** Structure name, from the core. *)
  domains : int;  (** Worker domains, the paper's [m]. *)
  queries : int;  (** Total queries served ([domains * queries_per_domain]). *)
  seconds : float;  (** Wall-clock for the serving phase only. *)
  throughput : float;  (** Queries per second. *)
  total_probes : int;  (** Sum of all per-cell counters. *)
  counts : int array;  (** Per-cell atomic probe tallies, length [space]. *)
  hottest_cell : int;  (** Index of the most-probed cell. *)
  hottest_count : int;  (** Its tally — the observed hot spot. *)
  hottest_share : float;  (** [hottest_count / total_probes]. *)
  flat_bound : float;
      (** [queries * max_probes / space] — the per-cell tally a
          perfectly flat (contention [1/s]) structure would show.
          {!hotspot_ratio} divides by this. *)
}

(** {1 Phase accounting}

    The scaling observatory's time-attribution layer: when a run is
    instrumented ([obs] or [monitor] present), every worker splits its
    batch wall time into disjoint monotonic-clock phases, kept in a
    plain record the worker alone writes (same single-writer discipline
    as the metric shards) and read by the orchestrator strictly after
    the join. The invariant tests assert is exact by construction:

    [probe + tally + publish + pin + other = wall].

    [other] is the defined residual (loop overhead, the accounting
    itself, GC pauses between windows); [idle] is serve wall minus the
    worker's own batch wall (spawn/join skew), filled in post-join.
    Totals are also flushed once per worker into the
    [engine_phase_*_ns_total] counters, so [/metrics] and
    [/scaling.json] carry the same numbers. Tally increments on
    per-cell atomics happen {e inside} the dictionary's [mem], so they
    are attributed to probe work — the probe phase is "time the hot
    path spent where contention lives". *)

type phase_stats = {
  ph_domain : int;  (** Worker index [0 .. domains-1]. *)
  mutable ph_probe_ns : int;
      (** Inside the dictionary's [mem] (cell reads, per-cell tallies,
          spin waits); for dynamic runs, minus the pin phase below. *)
  mutable ph_tally_ns : int;
      (** Per-query telemetry recording (latency observe, counters). *)
  mutable ph_publish_ns : int;
      (** Periodic seqlock window publishes + GC sampling + journal
          appends (the final batch-end publish is not charged). *)
  mutable ph_pin_ns : int;
      (** Epoch pin/unpin announcements ({!Lc_dynamic.Epoch.mem_phased});
          0 for static runs. *)
  mutable ph_other_ns : int;  (** Exact residual: [wall] minus the above. *)
  mutable ph_wall_ns : int;  (** The worker's batch wall time. *)
  mutable ph_idle_ns : int;
      (** Serve wall minus [ph_wall_ns], filled in after the join. *)
}

val phase_counter_names : (string * string) list
(** [(phase, counter_name)] pairs for the seven
    [engine_phase_*_ns_total] counters ([probe], [tally], [publish],
    [pin], [other], [wall], [idle]) — shared by registration, the
    [/scaling.json] body and the scaling artifact. *)

val gc_metric_names : Lc_obs.Window.gc_config
(** Names of the per-domain GC allocation counters instrumented runs
    register ([engine_gc_minor_words_total],
    [engine_gc_promoted_words_total], [engine_gc_major_words_total]) —
    each worker flushes its own [Gc.counters] deltas into its shard at
    batch end and before every window publish, so the windowed GC view
    and the scaling artifact read per-domain allocation without any
    cross-domain [Gc] call on the hot path. *)

(** Live monitoring for a serving run: a monitor domain that cuts
    {!Lc_obs.Window} snapshots on an interval while the workers are hot,
    per-worker {!Lc_obs.Heavy} hot-cell sketches published through the
    window seqlocks, and ready-made {!Lc_obs.Http} routes for scraping
    the whole thing mid-run. *)
module Monitor : sig
  type t

  val create :
    ?ring:int ->
    ?interval_s:float ->
    ?publish_period:int ->
    ?top_k:int ->
    ?alert_factor:float ->
    ?on_window:(Lc_obs.Window.entry -> unit) ->
    ?journal:Lc_obs.Journal.t ->
    ?on_alert:(Lc_obs.Window.entry -> unit) ->
    ?obs:Lc_obs.Obs.t ->
    domains:int ->
    Lc_dict.Instance.t ->
    t
  (** A monitor for one monitored {!run} over [inst] with [domains]
      workers. Registers the engine metrics on [obs] (a fresh handle is
      created when omitted) and sizes one window publisher per domain
      plus the orchestrator.

      - [ring] (default 512): windows retained, oldest evicted.
      - [interval_s] (default 0.25): monitor tick period — one window
        per tick.
      - [publish_period] (default 256): queries between a worker's
        seqlock publications.
      - [top_k] (default 16): hot-cell sketch capacity per worker.
      - [alert_factor] (default 8.0): fire when the windowed
        [engine_hotspot_ratio] exceeds this multiple of the flat
        [1/s]-per-query bound — Theorem 3 keeps the ratio [O(1)], so a
        modest factor separates the low-contention dictionary from any
        [Theta(sqrt n)] regression.
      - [on_window]: called on the monitor domain with each completed
        window (the [lowcon monitor] dashboard hook); exceptions are
        swallowed.
      - [journal]: a flight-recorder ring ({!Lc_obs.Journal}) the run
        writes engine events into — window cuts, top-k sketch snapshots,
        alert raise/clear transitions, worker publications and
        orchestrator build/serve stage marks. Must have been created
        with at least [domains + 2] writers (ring 0 is the orchestrator,
        rings 1..[domains] the workers, ring [domains + 1] the monitor
        domain). A {!Dynamic} run additionally records builder events
        (epoch publish, level merge, reclaim) on ring [domains + 2]
        when the journal was sized with [domains + 3] writers — with
        fewer, the builder is simply silent and everything else works
        as before. An attached controller ({!attach_controller})
        likewise records its decisions on ring [domains + 3] when the
        journal has [domains + 4] writers, and is silent with fewer.
        Recording is lock-free and allocation-light, so a
        journal can stay attached to production runs and be dumped only
        when something fires.
      - [on_alert]: called once per quiet->firing alert {e edge} (not
        per firing window) on whichever domain cut the window — the
        dump-on-alert postmortem hook. Exceptions are swallowed.

      A monitor is single-use: its sketches and window deltas are
      cumulative, so reusing one across runs conflates their streams
      (create a fresh monitor per run, like a fresh [obs] handle). *)

  val create_for :
    ?ring:int ->
    ?interval_s:float ->
    ?publish_period:int ->
    ?top_k:int ->
    ?alert_factor:float ->
    ?on_window:(Lc_obs.Window.entry -> unit) ->
    ?journal:Lc_obs.Journal.t ->
    ?on_alert:(Lc_obs.Window.entry -> unit) ->
    ?obs:Lc_obs.Obs.t ->
    domains:int ->
    space:int ->
    max_probes:int ->
    unit ->
    t
  (** {!create} generalised to an explicit [space] / [max_probes]
      budget instead of an {!Lc_dict.Instance.t} — what the dynamic
      serving mode needs, where there is no static instance and the
      budget comes from a published {!Lc_dynamic.Epoch} snapshot
      (typically the preloaded one; the windowed flat bound then tracks
      that budget even as later publications change the level set).
      All other parameters and the single-use rule are as for
      {!create}. *)

  val obs : t -> Lc_obs.Obs.t
  val window : t -> Lc_obs.Window.t
  val interval_s : t -> float

  val journal : t -> Lc_obs.Journal.t option
  (** The attached flight recorder, if any. *)

  val controller : t -> Lc_control.Controller.t option
  (** The attached replication controller, if any. *)

  val attach_controller : t -> Lc_control.Controller.t -> unit
  (** Attach a {!Lc_control.Controller.t} before serving starts. The
      monitor domain becomes the controller's observing domain: every
      {!tick} feeds the cut window's sketch entries into
      {!Lc_control.Controller.observe}, so decisions happen at window
      granularity with no extra domain. A {!Dynamic} run wires the
      controller's actuator to {!Lc_dynamic.Epoch.request_boost}
      automatically; decisions are journaled on ring
      [{!controller_writer} ~domains] when the monitor's journal is
      sized for it. *)

  val controller_writer : domains:int -> int
  (** [domains + 3] — the journal ring an attached controller records
      its decisions on (after orchestrator [0], workers [1..domains],
      monitor [domains + 1] and builder [domains + 2]); size the
      journal with at least [domains + 4] writers to capture them. *)

  val tick : t -> Lc_obs.Window.entry
  (** Cut one window now: {!Lc_obs.Window.tick} plus journal recording
      (window cut, sketch snapshot, alert edges), the controller step
      when one is attached, and the [on_alert] / [on_window] callbacks.
      Monitored {!run}s call this from the monitor domain every
      [interval_s] and once after the join; exposed for tests and
      custom drivers. *)

  val updates_schema_name : string
  (** ["lowcon-updates"] — the [/updates.json] document's schema, so
      [lowcon validate] recognises a saved scrape by content. *)

  val updates_schema_version : int

  val scaling_schema_name : string
  (** ["lowcon-scaling-live"] — the [/scaling.json] document's schema.
      Distinct from the offline ["lowcon-scaling"] artifact written by
      [lowcon scale]: this is one run's live telemetry, that is a
      fitted domain sweep. *)

  val scaling_schema_version : int

  val control_schema_name : string
  (** ["lowcon-control"] — the [/control.json] document's schema:
      the controller's policy, live hysteresis state and full decision
      log, reconciling field for field with the journaled
      [Control_decision] events. *)

  val control_schema_version : int

  val control_json : t -> string
  (** The [/control.json] body, also available without an HTTP server —
      what [lowcon monitor --control-out] saves for offline
      [lowcon validate] / reconciliation. *)

  val routes : t -> Lc_obs.Http.route list
  (** Scrape routes over the live (seqlock-read) state, safe to serve
      from an {!Lc_obs.Http} domain mid-run:

      - [/metrics] — Prometheus text: the merged cumulative snapshot
        (counters monotone across scrapes) plus the per-window gauges
        ({!Lc_obs.Window.prometheus_gauges});
      - [/snapshot.json] — the merged snapshot as JSON
        ({!Lc_obs.Export.json_snapshot});
      - [/cells.json] — merged top-k sketch entries with error bounds,
        plus an exact log-bucketed per-cell count histogram read from
        the engine's live atomics;
      - [/windows.json] — the window ring and alert state;
      - [/updates.json] — the update-path view, schema-versioned
        (["lowcon-updates"] v1): cumulative builder counters (null when
        the run never exercised the update path) and the per-window
        update entries (ups, publications/s, write-amp, rebuild
        p50/p99, epoch/retired/reader-lag gauges);
      - [/scaling.json] — the scaling observatory's live view,
        schema-versioned (["lowcon-scaling-live"] v1): cumulative
        per-phase time attribution, GC allocation counters with the
        per-window GC entries, and the cache-line co-heat diagnostic
        (null for runs without live per-cell counters);
      - [/control.json] — the replication controller's view,
        schema-versioned (["lowcon-control"] v1): policy constants,
        live hysteresis state (score, cooldown, last windowed ratio)
        and the complete decision log ([attached: false] when no
        controller is attached);
      - [/healthz] — liveness.

      [/cells.json] additionally carries the same co-heat object next
      to its count histogram. *)
end

(** {1 The unified entry point}

    One configuration record, one [run] function, two workload shapes.
    [Config] carries everything that describes {e how} to serve
    (parallelism, seed, cost model, observability); the {!workload}
    variant describes {e what} to serve — a static instance under a
    query distribution, or an epoch-published dynamic dictionary under
    a mixed insert/delete/query stream. *)

module Config : sig
  type t = {
    domains : int;  (** Worker (reader) domains, the paper's [m]. *)
    seed : int;  (** Seeds batch sampling and per-domain rngs. *)
    cost : cost;  (** Probe cost model; {!Static} workloads only. *)
    obs : Lc_obs.Obs.t option;
        (** Observability handle: per-domain metric shards and span
            timelines, so telemetry adds no shared mutable state to
            the hot path. Absent = telemetry-free serving. *)
    monitor : Monitor.t option;
        (** Live monitoring; its handle supersedes [obs] when present. *)
  }

  val make :
    ?cost:cost ->
    ?obs:Lc_obs.Obs.t ->
    ?monitor:Monitor.t ->
    domains:int ->
    seed:int ->
    unit ->
    t
  (** [cost] defaults to {!Free}; [obs] and [monitor] to absent. *)
end

type workload =
  | Static of {
      inst : Lc_dict.Instance.t;
      qdist : Lc_cellprobe.Qdist.t;
      queries_per_domain : int;
    }
      (** The read-only serving mode: each domain drains a pre-sampled
          batch of [queries_per_domain] membership queries against a
          static instance. *)
  | Dynamic of {
      epoch : Lc_dynamic.Epoch.t;
      ops : Lc_workload.Opstream.op array;
      publish_every : int;
    }
      (** The read-write serving mode. [ops] is split by
          {!Lc_workload.Opstream.split}: queries are dealt round-robin
          to the [domains] reader domains (lock-free epoch-pinned
          probes), updates go in stream order to one extra builder
          domain, which publishes a snapshot every [publish_every]
          updates (plus once at stream end) and reclaims retired levels
          as readers leave. Requires [cost = Free]: the per-cell
          spinlock array is meaningless when the cell set changes per
          publication. Updates invisible to readers between
          publications; telemetry reconciles exactly —
          [engine_queries_total] = query ops, [engine_probes_total] =
          the readers' cumulative probe count. *)

type update_stats = {
  inserts : int;  (** Insert ops applied by the builder. *)
  deletes : int;  (** Delete ops applied by the builder. *)
  query_hits : int;  (** Queries that answered [true]. *)
  publications : int;  (** Snapshots published. *)
  reclaimed : int;  (** Levels freed by epoch reclamation. *)
  retired_pending : int;
      (** Retired levels still unfreed at the end — 0 after the
          post-join reclaim unless a reader leaked a pin. *)
  keys_rebuilt : int;  (** {!Lc_dynamic.Dynamic.keys_rebuilt} total. *)
  purges : int;  (** Tombstone purges triggered. *)
  final_live : int;  (** Live keys in the final snapshot. *)
  final_epoch : int;  (** Epoch of the final snapshot. *)
  cells_written : int;
      (** Exact cells written by level builds {e during this run}
          (lifetime {!Lc_dynamic.Dynamic.cells_written} minus the
          preload baseline) — reconciles with the
          [engine_cells_written_total] counter and the windowed
          [u_cells] sums. [rebuilds], [rebuild_ns] and [publish_ns]
          are baselined the same way. *)
  rebuilds : int;  (** Level builds performed. *)
  rebuild_ns : int;  (** Wall ns spent inside level builds. *)
  publish_ns : int;  (** Wall ns spent inside {!Lc_dynamic.Epoch.publish}. *)
  write_amp : float;
      (** [cells_written / inserts] — cells written per key inserted;
          0 when the stream had no inserts. *)
  builder_ns : int;
      (** Builder-domain wall time over the whole update stream,
          measured whether or not telemetry is attached — the numerator
          of ns/update. *)
  reclaim_lag_max : int;
      (** Worst reclamation lag in epochs
          ({!Lc_dynamic.Epoch.reclaim_lag_max}). *)
}

type outcome = {
  result : result;
      (** For {!Dynamic}: [queries] counts query ops, [counts] /
          [flat_bound] describe the {e final} snapshot's cells (probes
          to levels retired mid-run are preserved in [total_probes]
          but not in [counts]), and [name] is ["lc-dyn"]. *)
  windows : Lc_obs.Window.entry list;
      (** The window ring at completion, oldest first. The final entry
          is cut after the workers join, so summing [queries] over
          [windows] (when none were evicted) reconciles exactly with
          [result.queries], and its [hotspot_ratio] agrees with
          {!hotspot_ratio} of [result] to within the sketch error
          bound. *)
  cells : Lc_obs.Heavy.merged option;
      (** Final merged hot-cell sketch ([None] without a monitor). *)
  alert_windows : int;  (** Windows that fired the hotspot alert. *)
  updates : update_stats option;
      (** Builder-side statistics; [None] for {!Static} workloads. *)
  phases : phase_stats array option;
      (** Per-worker phase accounting, one element per worker domain;
          [None] exactly when the run was uninstrumented (no [obs], no
          [monitor]) — the obs-off hot path stays byte-identical. *)
}

val run : Config.t -> workload -> outcome
(** The single entry point. [run config (Static ...)] is the windowed
    read-only mode (telemetry-free when unobserved); [run config
    (Dynamic ...)] is the epoch-published read-write mode, with online
    re-replication when the config's monitor carries an attached
    controller. Raises [Invalid_argument] on a monitor sized for a
    different domain count, and for {!Dynamic} with a [Spinlock]
    cost. *)

val probe_sample_period : int
(** The engine samples 1 probe in this many for
    [engine_probe_latency_ns] — a calibration constant recorded in perf
    artifact fingerprints so artifacts from different engine builds are
    not silently compared. *)

val hotspot_ratio : result -> float
(** [hotspot_ratio r] is [r.hottest_count /. r.flat_bound]: how many
    times over the perfectly-flat tally the worst cell is. [O(1)] for
    the low-contention dictionary (Theorem 3); [Theta(space)] for a
    structure that funnels every query through one cell. *)

val answer_all :
  ?domains:int -> seed:int -> Lc_dict.Instance.t -> queries:int array -> bool array
(** [answer_all ~domains ~seed inst ~queries] answers the whole query
    array by round-robin partition across [domains] concurrent domains
    (counter-free probes), returning answers aligned with [queries] —
    the multi-domain counterpart of mapping [inst.mem] sequentially,
    used by the tier-1 agreement tests. Default [domains] is 2. *)

val count_histogram : result -> (int * int) list
(** Log-bucketed per-cell histogram: pairs [(upper, cells)] meaning
    [cells] cells received between [prev_upper + 1] and [upper] probes
    ([(0, k)] counts untouched cells). Buckets are powers of two; empty
    buckets are omitted. *)

val top_cells : result -> k:int -> (int * int) list
(** The [k] hottest cells as [(cell, count)], descending. *)
