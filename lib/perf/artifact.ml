(* Schema-versioned bench artifacts: the BENCH_<n>.json documents a perf
   trajectory is made of. An artifact is only useful if a future session
   can trust it, so everything that could silently change the numbers —
   toolchain, machine, engine calibration constants, seed, git revision
   — is pinned in a fingerprint, the writer rejects non-finite floats
   with a typed error instead of emitting nulls, and the reader
   validates schema name and version before believing a single field. *)

module Json = Lc_obs.Json

let schema_name = "lowcon-bench"
let schema_version = 1

type ci = { mean : float; lo : float; hi : float; samples : float list }

type entry = {
  structure : string;
  workload : string;
  domains : int;
  queries_per_domain : int;
  trials : int;
  ns_per_query : ci;
  probes_per_query : ci;
  p50_ns : float;
  p99_ns : float;
  hotspot_ratio : float;
  queries : int;
  probes : int;
  ns_per_update : ci option;
  write_amp : float option;
  minor_words_per_query : float option;
  major_collections : int option;
}

type fingerprint = {
  ocaml_version : string;
  os_type : string;
  word_size : int;
  cores : int;
  git_rev : string;
  seed : int;
  clock_overhead_ns : float;
  probe_sample_period : int;
  created_unix : float;
}

type t = { fingerprint : fingerprint; entries : entry list }

(* ---------------- fingerprinting ---------------- *)

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception End_of_file -> None)

(* Resolve HEAD by hand (no git subprocess): follow the symbolic ref to
   its loose file, fall back to packed-refs, then to "unknown" — an
   artifact written outside a checkout is still valid, just unpinned. *)
let git_rev () =
  let rec find_root dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir ".git/HEAD") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent (depth + 1)
  in
  match find_root (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some root -> (
    match read_file_opt (Filename.concat root ".git/HEAD") with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim head in
      match String.length head >= 5 && String.sub head 0 5 = "ref: " with
      | false -> head (* detached HEAD: the hash itself *)
      | true -> (
        let r = String.sub head 5 (String.length head - 5) in
        match read_file_opt (Filename.concat root (Filename.concat ".git" r)) with
        | Some rev -> String.trim rev
        | None -> (
          match read_file_opt (Filename.concat root ".git/packed-refs") with
          | None -> "unknown"
          | Some packed ->
            let suffix = " " ^ r in
            let matches line =
              String.length line > String.length suffix
              && String.sub line
                   (String.length line - String.length suffix)
                   (String.length suffix)
                 = suffix
            in
            (match List.find_opt matches (String.split_on_char '\n' packed) with
            | Some line -> String.sub line 0 (String.index line ' ')
            | None -> "unknown")))))

let clock_overhead_ns () =
  let reps = 1024 in
  let t0 = Lc_obs.Clock.now_ns () in
  for _ = 2 to reps do
    ignore (Lc_obs.Clock.now_ns () : int64)
  done;
  let t1 = Lc_obs.Clock.now_ns () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int reps

let fingerprint ~seed =
  {
    ocaml_version = Sys.ocaml_version;
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    cores = Domain.recommended_domain_count ();
    git_rev = git_rev ();
    seed;
    clock_overhead_ns = clock_overhead_ns ();
    probe_sample_period = Lc_parallel.Engine.probe_sample_period;
    created_unix = Unix.time ();
  }

(* ---------------- encoding ---------------- *)

let json_of_ci c =
  Json.Obj
    [
      ("mean", Json.Float c.mean);
      ("lo", Json.Float c.lo);
      ("hi", Json.Float c.hi);
      ("samples", Json.List (List.map (fun s -> Json.Float s) c.samples));
    ]

let json_of_entry e =
  (* The update-path fields are written only for configurations that
     exercised the update path, so artifacts from older suites (and
     read-only configurations) stay byte-compatible. *)
  let update_fields =
    (match e.ns_per_update with
    | Some c -> [ ("ns_per_update", json_of_ci c) ]
    | None -> [])
    @ match e.write_amp with Some w -> [ ("write_amp", Json.Float w) ] | None -> []
  in
  (* GC fields follow the same optionality discipline: suites measure
     them, hand-built or pre-observatory entries may not. *)
  let gc_fields =
    (match e.minor_words_per_query with
    | Some w -> [ ("minor_words_per_query", Json.Float w) ]
    | None -> [])
    @
    match e.major_collections with
    | Some c -> [ ("major_collections", Json.Int c) ]
    | None -> []
  in
  Json.Obj
    ([
       ("structure", Json.String e.structure);
       ("workload", Json.String e.workload);
       ("domains", Json.Int e.domains);
       ("queries_per_domain", Json.Int e.queries_per_domain);
       ("trials", Json.Int e.trials);
       ("ns_per_query", json_of_ci e.ns_per_query);
       ("probes_per_query", json_of_ci e.probes_per_query);
       ("p50_ns", Json.Float e.p50_ns);
       ("p99_ns", Json.Float e.p99_ns);
       ("hotspot_ratio", Json.Float e.hotspot_ratio);
       ("queries", Json.Int e.queries);
       ("probes", Json.Int e.probes);
     ]
    @ update_fields @ gc_fields)

let json_of_fingerprint f =
  Json.Obj
    [
      ("ocaml_version", Json.String f.ocaml_version);
      ("os_type", Json.String f.os_type);
      ("word_size", Json.Int f.word_size);
      ("cores", Json.Int f.cores);
      ("git_rev", Json.String f.git_rev);
      ("seed", Json.Int f.seed);
      ("clock_overhead_ns", Json.Float f.clock_overhead_ns);
      ("probe_sample_period", Json.Int f.probe_sample_period);
      ("created_unix", Json.Float f.created_unix);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("fingerprint", json_of_fingerprint t.fingerprint);
      ("entries", Json.List (List.map json_of_entry t.entries));
    ]

let to_string t =
  match Json.to_string_strict (to_json t) with
  | Ok s -> s
  | Error { Json.path; value } ->
    failwith
      (Printf.sprintf "Artifact.to_string: non-finite value %h at %s — refusing to write" value
         path)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind
let field = Jsonu.field
let str_field = Jsonu.str_field
let int_field = Jsonu.int_field
let float_field = Jsonu.float_field
let in_context = Jsonu.in_context

let ci_of_json name j =
  in_context name
  @@ let* v = field name j in
     let* mean = float_field "mean" v in
     let* lo = float_field "lo" v in
     let* hi = float_field "hi" v in
     let* samples_j = field "samples" v in
     let* samples =
       List.fold_right
         (fun s acc ->
           let* acc = acc in
           match Json.float_value s with
           | Some f -> Ok (f :: acc)
           | None -> Error "field \"samples\": expected numbers")
         (Json.to_list samples_j) (Ok [])
     in
     if samples = [] then Error "field \"samples\": must be non-empty"
     else if lo > hi then Error "confidence interval has lo > hi"
     else Ok { mean; lo; hi; samples }

let entry_of_json i j =
  in_context (Printf.sprintf "entries[%d]" i)
  @@ let* structure = str_field "structure" j in
     let* workload = str_field "workload" j in
     let* domains = int_field "domains" j in
     let* queries_per_domain = int_field "queries_per_domain" j in
     let* trials = int_field "trials" j in
     let* ns_per_query = ci_of_json "ns_per_query" j in
     let* probes_per_query = ci_of_json "probes_per_query" j in
     let* p50_ns = float_field "p50_ns" j in
     let* p99_ns = float_field "p99_ns" j in
     let* hotspot_ratio = float_field "hotspot_ratio" j in
     let* queries = int_field "queries" j in
     let* probes = int_field "probes" j in
     (* Optional update-path fields: absent in read-only configurations
        and in artifacts written before the update observatory. *)
     let* ns_per_update =
       match Json.member "ns_per_update" j with
       | None -> Ok None
       | Some _ ->
         let* c = ci_of_json "ns_per_update" j in
         Ok (Some c)
     in
     let* write_amp =
       match Json.member "write_amp" j with
       | None -> Ok None
       | Some v -> (
         match Json.float_value v with
         | Some f -> Ok (Some f)
         | None -> Error "field \"write_amp\": expected a number")
     in
     (* Optional GC fields: absent in artifacts written before the
        scaling observatory. *)
     let* minor_words_per_query =
       match Json.member "minor_words_per_query" j with
       | None -> Ok None
       | Some v -> (
         match Json.float_value v with
         | Some f -> Ok (Some f)
         | None -> Error "field \"minor_words_per_query\": expected a number")
     in
     let* major_collections =
       match Json.member "major_collections" j with
       | None -> Ok None
       | Some v -> (
         match Json.int_value v with
         | Some c -> Ok (Some c)
         | None -> Error "field \"major_collections\": expected an integer")
     in
     if domains < 1 then Error "domains must be >= 1"
     else if trials < 1 then Error "trials must be >= 1"
     else
       Ok
         {
           structure;
           workload;
           domains;
           queries_per_domain;
           trials;
           ns_per_query;
           probes_per_query;
           p50_ns;
           p99_ns;
           hotspot_ratio;
           queries;
           probes;
           ns_per_update;
           write_amp;
           minor_words_per_query;
           major_collections;
         }

let fingerprint_of_json j =
  in_context "fingerprint"
  @@ let* v = field "fingerprint" j in
     let* ocaml_version = str_field "ocaml_version" v in
     let* os_type = str_field "os_type" v in
     let* word_size = int_field "word_size" v in
     let* cores = int_field "cores" v in
     let* git_rev = str_field "git_rev" v in
     let* seed = int_field "seed" v in
     let* clock_overhead_ns = float_field "clock_overhead_ns" v in
     let* probe_sample_period = int_field "probe_sample_period" v in
     let* created_unix = float_field "created_unix" v in
     Ok
       {
         ocaml_version;
         os_type;
         word_size;
         cores;
         git_rev;
         seed;
         clock_overhead_ns;
         probe_sample_period;
         created_unix;
       }

let of_json j =
  let* () = Jsonu.check_schema ~expect:schema_name ~version:schema_version j in
  let* fingerprint = fingerprint_of_json j in
  let* entries_j = field "entries" j in
  let* entries =
    List.fold_right
      (fun (i, e) acc ->
        let* acc = acc in
        let* e = entry_of_json i e in
        Ok (e :: acc))
      (List.mapi (fun i e -> (i, e)) (Json.to_list entries_j))
      (Ok [])
  in
  if entries = [] then Error "entries: must be non-empty" else Ok { fingerprint; entries }

let of_string s =
  let* j = Json.parse s in
  of_json j

let load path =
  match read_file_opt path with
  | None -> Error (Printf.sprintf "%s: cannot read" path)
  | Some s -> in_context path (of_string s)

let write ~path t = Lc_obs.Export.write_file ~path (to_string t)

let next_path ~dir =
  let taken n = Sys.file_exists (Filename.concat dir (Printf.sprintf "BENCH_%d.json" n)) in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let max_n =
    Array.fold_left
      (fun acc name ->
        match Scanf.sscanf_opt name "BENCH_%d.json%!" (fun n -> n) with
        | Some n -> max acc n
        | None -> acc)
      (-1) entries
  in
  let n = max_n + 1 in
  assert (not (taken n));
  Filename.concat dir (Printf.sprintf "BENCH_%d.json" n)

let key (e : entry) = (e.structure, e.workload, e.domains)
