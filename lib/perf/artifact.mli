(** Schema-versioned bench artifacts ([BENCH_<n>.json]).

    One artifact is one run of the perf suite: per-configuration timing
    and probe-count distributions with bootstrap confidence intervals,
    plus an environment fingerprint pinning everything that could
    silently change the numbers (toolchain, machine, engine calibration
    constants, seed, git revision). The writer is {e strict} — a NaN or
    infinity anywhere aborts with a typed path instead of emitting a
    [null] — and the reader validates schema name, version, field types
    and basic invariants before returning a value, so [lowcon perf diff]
    never compares garbage. *)

val schema_name : string
(** ["lowcon-bench"]. *)

val schema_version : int

type ci = {
  mean : float;
  lo : float;  (** Bootstrap CI lower bound. *)
  hi : float;
  samples : float list;  (** Raw per-trial values, for rank tests at diff time. *)
}

(** One (structure, workload, domain-count) configuration's results. *)
type entry = {
  structure : string;  (** A {!Select.structure} name. *)
  workload : string;  (** A {!Select.workload} spec. *)
  domains : int;
  queries_per_domain : int;
  trials : int;
  ns_per_query : ci;
  probes_per_query : ci;
  p50_ns : float;  (** Median across trials of per-trial latency quantiles. *)
  p99_ns : float;
  hotspot_ratio : float;  (** Sketch-guaranteed hottest tally over the flat bound. *)
  queries : int;  (** Total queries across all trials (reconciled with counters). *)
  probes : int;
  ns_per_update : ci option;
      (** Builder wall-time per update op; [None] for read-only
          configurations and in artifacts written before the update
          observatory (the field is simply absent from their JSON). *)
  write_amp : float option;
      (** Mean cells written per key inserted across trials; [None]
          exactly when [ns_per_update] is. *)
  minor_words_per_query : float option;
      (** Mean minor-heap words allocated per query across trials (from
          the per-domain [engine_gc_minor_words_total] counters); [None]
          in artifacts written before the scaling observatory. The
          engine hot path keeps this at 0 — a nonzero value in a bench
          entry is itself a regression signal. *)
  major_collections : int option;
      (** Major collection slices during the entry's trials, summed
          (process-wide [Gc.quick_stat] delta around each trial); [None]
          in pre-observatory artifacts. *)
}

type fingerprint = {
  ocaml_version : string;
  os_type : string;
  word_size : int;
  cores : int;  (** [Domain.recommended_domain_count] at run time. *)
  git_rev : string;  (** Resolved from [.git/HEAD]; ["unknown"] outside a checkout. *)
  seed : int;  (** The run's single [--seed]; every trial seed derives from it. *)
  clock_overhead_ns : float;  (** Measured cost of one {!Lc_obs.Clock.now_ns} call. *)
  probe_sample_period : int;  (** {!Lc_parallel.Engine.probe_sample_period}. *)
  created_unix : float;
}

type t = { fingerprint : fingerprint; entries : entry list }

val fingerprint : seed:int -> fingerprint
(** Capture the current environment (reads [.git/HEAD], calibrates the
    clock). *)

val to_json : t -> Lc_obs.Json.t

val to_string : t -> string
(** Strict serialisation; raises [Failure] naming the JSON path if any
    value is NaN or infinite. *)

val of_json : Lc_obs.Json.t -> (t, string) result
(** Validates schema name and version, every field's presence and type,
    and basic invariants (non-empty entries and samples, [lo <= hi],
    positive [domains]/[trials]). *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result

val write : path:string -> t -> unit
(** Atomic write via {!Lc_obs.Export.write_file}. *)

val next_path : dir:string -> string
(** [dir/BENCH_<n>.json] for the smallest [n] past every existing
    artifact in [dir]. *)

val key : entry -> string * string * int
(** The identity a differ matches entries by:
    [(structure, workload, domains)]. *)

(** {2 Pieces shared with the postmortem and scaling artifacts} *)

val json_of_fingerprint : fingerprint -> Lc_obs.Json.t

val fingerprint_of_json : Lc_obs.Json.t -> (fingerprint, string) result
(** Reads the ["fingerprint"] member of the given document. *)

val json_of_ci : ci -> Lc_obs.Json.t

val ci_of_json : string -> Lc_obs.Json.t -> (ci, string) result
(** [ci_of_json name j] reads and validates the [name] member of [j]
    (non-empty samples, [lo <= hi]). *)
