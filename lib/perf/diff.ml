(* Differential analysis of two bench artifacts.

   "Is B slower than A?" gets answered per configuration and per metric
   with two independent checks that must agree: the Mann-Whitney U rank
   test on the raw per-trial samples (exact null distribution at these
   sample sizes) and disjointness of the bootstrap confidence
   intervals. Rank test alone flags tiny-but-consistent shifts a CI
   would shrug at; CI alone flags lucky rank orderings; requiring both
   keeps a noisy CI run from crying wolf. *)

module Json = Lc_obs.Json
module Metrics = Lc_obs.Metrics
module Sigtest = Lc_analysis.Sigtest
module Tablefmt = Lc_analysis.Tablefmt

type verdict = Regression | Improvement | No_change

type metric_diff = {
  a_mean : float;
  b_mean : float;
  delta_pct : float;
  p : float;
  method_ : Sigtest.method_;
  disjoint : bool;
  verdict : verdict;
}

type row = { key : string * string * int; ns : metric_diff; probes : metric_diff }

type report = {
  rows : row list;
  only_in_a : (string * string * int) list;
  only_in_b : (string * string * int) list;
  regressions : int;
  improvements : int;
  alpha : float;
}

let verdict_string = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | No_change -> "no change"

let key_string (s, w, d) = Printf.sprintf "%s/%s@%d" s w d

let diff_metric ~alpha (a : Artifact.ci) (b : Artifact.ci) =
  let xs = Array.of_list a.Artifact.samples and ys = Array.of_list b.Artifact.samples in
  let mw = Sigtest.mann_whitney_u xs ys in
  let disjoint =
    Sigtest.ci_disjoint ~a:(a.Artifact.lo, a.Artifact.hi) ~b:(b.Artifact.lo, b.Artifact.hi)
  in
  let a_mean = a.Artifact.mean and b_mean = b.Artifact.mean in
  let delta_pct = if a_mean = 0.0 then 0.0 else (b_mean -. a_mean) /. a_mean *. 100.0 in
  let significant = mw.Sigtest.p_two_sided < alpha && disjoint in
  let verdict =
    if not significant then No_change
    else if b_mean > a_mean then Regression
    else Improvement
  in
  {
    a_mean;
    b_mean;
    delta_pct;
    p = mw.Sigtest.p_two_sided;
    method_ = mw.Sigtest.method_;
    disjoint;
    verdict;
  }

let compare_artifacts ?(alpha = 0.05) (a : Artifact.t) (b : Artifact.t) =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Diff.compare_artifacts: alpha outside (0, 1)";
  let index art =
    List.map (fun (e : Artifact.entry) -> (Artifact.key e, e)) art.Artifact.entries
  in
  let ia = index a and ib = index b in
  let rows =
    List.filter_map
      (fun (k, (ea : Artifact.entry)) ->
        match List.assoc_opt k ib with
        | None -> None
        | Some eb ->
          Some
            {
              key = k;
              ns = diff_metric ~alpha ea.Artifact.ns_per_query eb.Artifact.ns_per_query;
              probes =
                diff_metric ~alpha ea.Artifact.probes_per_query eb.Artifact.probes_per_query;
            })
      ia
  in
  let missing_from other = List.filter_map (fun (k, _) -> if List.mem_assoc k other then None else Some k) in
  let count v =
    List.length
      (List.filter (fun r -> r.ns.verdict = v || r.probes.verdict = v) rows)
  in
  {
    rows;
    only_in_a = missing_from ib ia;
    only_in_b = missing_from ia ib;
    regressions = count Regression;
    improvements = count Improvement;
    alpha;
  }

let has_regression r = r.regressions > 0

let render r =
  let t =
    Tablefmt.create ~title:(Printf.sprintf "perf diff (alpha = %g, MW-U + CI overlap)" r.alpha)
      ~columns:
        [ "config"; "ns/q A"; "ns/q B"; "dns%"; "p(ns)"; "probes/q A"; "probes/q B"; "dpr%";
          "p(pr)"; "verdict" ]
  in
  List.iter
    (fun row ->
      let worst =
        match (row.ns.verdict, row.probes.verdict) with
        | Regression, _ | _, Regression -> Regression
        | Improvement, _ | _, Improvement -> Improvement
        | _ -> No_change
      in
      Tablefmt.add_row t
        [
          key_string row.key;
          Tablefmt.fmt_g row.ns.a_mean;
          Tablefmt.fmt_g row.ns.b_mean;
          Printf.sprintf "%+.1f" row.ns.delta_pct;
          Tablefmt.fmt_g row.ns.p;
          Tablefmt.fmt_g row.probes.a_mean;
          Tablefmt.fmt_g row.probes.b_mean;
          Printf.sprintf "%+.1f" row.probes.delta_pct;
          Tablefmt.fmt_g row.probes.p;
          verdict_string worst;
        ])
    r.rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Tablefmt.render t);
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "only in A: %s\n" (key_string k)))
    r.only_in_a;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "only in B: %s\n" (key_string k)))
    r.only_in_b;
  Buffer.add_string buf
    (Printf.sprintf "%d configuration(s): %d regression(s), %d improvement(s).\n"
       (List.length r.rows) r.regressions r.improvements);
  Buffer.contents buf

let json_of_metric m =
  Json.Obj
    [
      ("a_mean", Json.Float m.a_mean);
      ("b_mean", Json.Float m.b_mean);
      ("delta_pct", Json.Float m.delta_pct);
      ("p", Json.Float m.p);
      ( "method",
        Json.String (match m.method_ with Sigtest.Exact -> "exact" | Sigtest.Normal_approx -> "normal") );
      ("ci_disjoint", Json.Bool m.disjoint);
      ("verdict", Json.String (verdict_string m.verdict));
    ]

let to_json r =
  let key_json (s, w, d) =
    Json.Obj [ ("structure", Json.String s); ("workload", Json.String w); ("domains", Json.Int d) ]
  in
  Json.Obj
    [
      ("schema", Json.String "lowcon-perf-diff");
      ("version", Json.Int 1);
      ("alpha", Json.Float r.alpha);
      ("regressions", Json.Int r.regressions);
      ("improvements", Json.Int r.improvements);
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("key", key_json row.key);
                   ("ns_per_query", json_of_metric row.ns);
                   ("probes_per_query", json_of_metric row.probes);
                 ])
             r.rows) );
      ("only_in_a", Json.List (List.map key_json r.only_in_a));
      ("only_in_b", Json.List (List.map key_json r.only_in_b));
    ]

(* Gauges through the real registry + exporter rather than hand-rolled
   text: the output stays consistent with every other exposition this
   repo emits (escaping, HELP/TYPE lines). *)
let prometheus r =
  let m = Metrics.create () in
  let g_reg =
    Metrics.gauge m ~help:"Configurations with a significant regression in the last perf diff"
      "perf_diff_regressions"
  in
  let g_imp =
    Metrics.gauge m ~help:"Configurations with a significant improvement in the last perf diff"
      "perf_diff_improvements"
  in
  let g_rows = Metrics.gauge m ~help:"Configurations compared" "perf_diff_configurations" in
  let g_worst =
    Metrics.gauge m ~help:"Largest ns/query delta percentage across configurations"
      "perf_diff_worst_ns_delta_pct"
  in
  let sh = Metrics.shard m ~domain:0 in
  Metrics.set_gauge sh g_reg (float_of_int r.regressions);
  Metrics.set_gauge sh g_imp (float_of_int r.improvements);
  Metrics.set_gauge sh g_rows (float_of_int (List.length r.rows));
  Metrics.set_gauge sh g_worst
    (List.fold_left (fun acc row -> Float.max acc row.ns.delta_pct) 0.0 r.rows);
  Lc_obs.Export.prometheus (Metrics.snapshot m)
