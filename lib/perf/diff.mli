(** Differential regression analysis between two bench artifacts.

    Entries are matched by {!Artifact.key}; each matched configuration's
    ns/query and probes/query distributions are compared with {e two}
    independent checks that must both agree before anything is flagged:
    the Mann-Whitney U rank test on the raw per-trial samples
    ({!Lc_analysis.Sigtest.mann_whitney_u}, [p < alpha]) and
    disjointness of the bootstrap confidence intervals. An artifact
    diffed against itself therefore always reports no change. *)

type verdict = Regression | Improvement | No_change

type metric_diff = {
  a_mean : float;
  b_mean : float;
  delta_pct : float;  (** [(b - a) / a * 100]; positive means B is worse. *)
  p : float;  (** Two-sided Mann-Whitney p-value. *)
  method_ : Lc_analysis.Sigtest.method_;
  disjoint : bool;  (** Whether the bootstrap CIs do not overlap. *)
  verdict : verdict;
}

type row = { key : string * string * int; ns : metric_diff; probes : metric_diff }

type report = {
  rows : row list;  (** Matched configurations, in A's order. *)
  only_in_a : (string * string * int) list;
  only_in_b : (string * string * int) list;
  regressions : int;  (** Rows where either metric regressed. *)
  improvements : int;
  alpha : float;
}

val compare_artifacts : ?alpha:float -> Artifact.t -> Artifact.t -> report
(** [alpha] defaults to 0.05. Raises [Invalid_argument] for an alpha
    outside (0, 1). *)

val has_regression : report -> bool

val render : report -> string
(** Aligned {!Lc_analysis.Tablefmt} table plus unmatched-key and summary
    lines. *)

val to_json : report -> Lc_obs.Json.t

val prometheus : report -> string
(** [perf_diff_*] gauges in the exposition format, built through the
    {!Lc_obs.Metrics} registry and {!Lc_obs.Export.prometheus}. *)

val verdict_string : verdict -> string
val key_string : string * string * int -> string
