(* Shared result-typed JSON decoding helpers for the artifact readers.
   Every error string says which field and what was expected, prefixed
   by context frames ({!in_context}), so a malformed committed artifact
   fails validation with a usable message. *)

module Json = Lc_obs.Json

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.string_value v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name j =
  let* v = field name j in
  match Json.int_value v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let float_field name j =
  let* v = field name j in
  match Json.float_value v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let bool_field name j =
  let* v = field name j in
  match Json.bool_value v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "field %S: expected a boolean" name)

let in_context ctx = Result.map_error (fun e -> ctx ^ ": " ^ e)

let list_field name j =
  let* v = field name j in
  match v with
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected an array" name)

(* Decode each element of a list, threading the index into errors. *)
let decode_list ctx decode l =
  List.fold_right
    (fun (i, e) acc ->
      let* acc = acc in
      let* e = in_context (Printf.sprintf "%s[%d]" ctx i) (decode e) in
      Ok (e :: acc))
    (List.mapi (fun i e -> (i, e)) l)
    (Ok [])

let check_schema ~expect ~version j =
  let* schema = str_field "schema" j in
  if schema <> expect then Error (Printf.sprintf "schema is %S, expected %S" schema expect)
  else
    let* v = int_field "version" j in
    if v <> version then
      Error (Printf.sprintf "unsupported %s version %d (reader supports %d)" expect v version)
    else Ok ()
