(* Postmortem artifacts: what the flight recorder dumps when the
   hotspot alert fires. The dump freezes three things the moment the
   quiet->firing edge is seen — the window ring, the journal rings, and
   the alert state — together with the same environment fingerprint a
   bench artifact carries, so "what led up to this alert" can be
   answered offline, from the JSON alone, long after the process is
   gone. *)

module Json = Lc_obs.Json
module Journal = Lc_obs.Journal
module Window = Lc_obs.Window
module Heavy = Lc_obs.Heavy

let schema_name = "lowcon-postmortem"
let schema_version = 1

type trigger = { index : int; ratio : float; factor : float }
type alert_state = { active : bool; firing_run : int; fired_total : int }

type t = {
  fingerprint : Artifact.fingerprint;
  structure : string;
  workload : string;
  domains : int;
  alert_factor : float;
  trigger : trigger;
  windows : Window.entry list;
  events : Journal.event list;
  dropped : int;
  alert : alert_state;
}

let capture ~fingerprint ~structure ~workload ~domains ~trigger:(e : Window.entry) mon =
  let w = Lc_parallel.Engine.Monitor.window mon in
  let factor = (Window.config w).Window.alert_factor in
  let events, dropped =
    match Lc_parallel.Engine.Monitor.journal mon with
    | None -> ([], 0)
    | Some j -> (Journal.events j, Journal.dropped j)
  in
  {
    fingerprint;
    structure;
    workload;
    domains;
    alert_factor = factor;
    trigger = { index = e.Window.index; ratio = e.Window.hotspot_ratio; factor };
    windows = Window.entries w;
    events;
    dropped;
    alert =
      {
        active = Window.alert_active w;
        firing_run = Window.alert_firing_run w;
        fired_total = Window.alert_fired_total w;
      };
  }

(* ---------------- encoding ---------------- *)

let json_of_cells top =
  Json.List (List.map (fun (i, c, e) -> Json.List [ Json.Int i; Json.Int c; Json.Int e ]) top)

let json_of_uentry (u : Window.uentry) =
  Json.Obj
    [
      ("inserts", Json.Int u.Window.u_inserts);
      ("deletes", Json.Int u.Window.u_deletes);
      ("ups", Json.Float u.Window.ups);
      ("publications", Json.Int u.Window.u_pubs);
      ("pubs_per_s", Json.Float u.Window.pubs_per_s);
      ("cells_written", Json.Int u.Window.u_cells);
      ("write_amp", Json.Float u.Window.write_amp);
      ("rebuild_p50_ns", Json.Float u.Window.rebuild_p50_ns);
      ("rebuild_p99_ns", Json.Float u.Window.rebuild_p99_ns);
      ("epoch", Json.Int u.Window.u_epoch);
      ("retired_pending", Json.Int u.Window.u_retired);
      ("reader_lag", Json.Int u.Window.u_reader_lag);
      ("cum_updates", Json.Int u.Window.cum_updates);
      ("cum_cells", Json.Int u.Window.cum_cells);
    ]

let json_of_gentry (g : Window.gentry) =
  Json.Obj
    [
      ("minor_words", Json.Int g.Window.g_minor_words);
      ("promoted_words", Json.Int g.Window.g_promoted_words);
      ("major_words", Json.Int g.Window.g_major_words);
      ("minor_collections", Json.Int g.Window.g_minor_collections);
      ("major_collections", Json.Int g.Window.g_major_collections);
      ("alloc_per_query", Json.Float g.Window.alloc_per_query);
      ("heap_words", Json.Int g.Window.g_heap_words);
      ("cum_minor_words", Json.Int g.Window.cum_minor_words);
      ("cum_major_collections", Json.Int g.Window.cum_major_collections);
    ]

let json_of_window (e : Window.entry) =
  Json.Obj
    ((match e.Window.updates with
     | None -> []
     | Some u -> [ ("updates", json_of_uentry u) ])
    @ (match e.Window.gc with
      | None -> []
      | Some g -> [ ("gc", json_of_gentry g) ])
    @ [
      ("index", Json.Int e.Window.index);
      ("t_start_s", Json.Float e.Window.t_start_s);
      ("t_end_s", Json.Float e.Window.t_end_s);
      ("queries", Json.Int e.Window.queries);
      ("probes", Json.Int e.Window.probes);
      ("qps", Json.Float e.Window.qps);
      ("probes_per_s", Json.Float e.Window.probes_per_s);
      ("p50_ns", Json.Float e.Window.p50_ns);
      ("p99_ns", Json.Float e.Window.p99_ns);
      ( "top_cells",
        json_of_cells
          (List.map (fun (c : Heavy.entry) -> (c.Heavy.item, c.Heavy.count, c.Heavy.err))
             e.Window.top_cells) );
      ("max_cell", Json.Int e.Window.max_cell);
      ("max_share", Json.Float e.Window.max_share);
      ("hotspot_ratio", Json.Float e.Window.hotspot_ratio);
      ("alert", Json.Bool e.Window.alert);
      ("cum_queries", Json.Int e.Window.cum_queries);
      ("cum_probes", Json.Int e.Window.cum_probes);
    ])

let json_of_kind = function
  | Journal.Window_cut { index; queries; qps; p50_ns; p99_ns; hotspot_ratio; alert } ->
    [
      ("type", Json.String "window_cut");
      ("index", Json.Int index);
      ("queries", Json.Int queries);
      ("qps", Json.Float qps);
      ("p50_ns", Json.Float p50_ns);
      ("p99_ns", Json.Float p99_ns);
      ("hotspot_ratio", Json.Float hotspot_ratio);
      ("alert", Json.Bool alert);
    ]
  | Journal.Alert_raised { index; ratio; factor } ->
    [
      ("type", Json.String "alert_raised");
      ("index", Json.Int index);
      ("ratio", Json.Float ratio);
      ("factor", Json.Float factor);
    ]
  | Journal.Alert_cleared { index; ratio; factor } ->
    [
      ("type", Json.String "alert_cleared");
      ("index", Json.Int index);
      ("ratio", Json.Float ratio);
      ("factor", Json.Float factor);
    ]
  | Journal.Sketch_snapshot { top } -> [ ("type", Json.String "sketch_snapshot"); ("top", json_of_cells top) ]
  | Journal.Stage { name; mark } ->
    [
      ("type", Json.String "stage");
      ("name", Json.String name);
      ("mark", Json.String (match mark with `Begin -> "begin" | `End -> "end"));
    ]
  | Journal.Publish { queries } -> [ ("type", Json.String "publish"); ("queries", Json.Int queries) ]
  | Journal.Epoch_publish { epoch; batch; levels; fresh_cells; dur_ns } ->
    [
      ("type", Json.String "epoch_publish");
      ("epoch", Json.Int epoch);
      ("batch", Json.Int batch);
      ("levels", Json.Int levels);
      ("fresh_cells", Json.Int fresh_cells);
      ("dur_ns", Json.Int dur_ns);
    ]
  | Journal.Level_merge { level; keys; replicas; cells; dur_ns } ->
    [
      ("type", Json.String "level_merge");
      ("level", Json.Int level);
      ("keys", Json.Int keys);
      ("replicas", Json.Int replicas);
      ("cells", Json.Int cells);
      ("dur_ns", Json.Int dur_ns);
    ]
  | Journal.Reclaim { epoch; freed; lag; pending } ->
    [
      ("type", Json.String "reclaim");
      ("epoch", Json.Int epoch);
      ("freed", Json.Int freed);
      ("lag", Json.Int lag);
      ("pending", Json.Int pending);
    ]
  | Journal.Control_decision
      { id; window; ratio; cell; count; err; score; action; old_boost; new_boost; cooldown } ->
    [
      ("type", Json.String "control_decision");
      ("id", Json.Int id);
      ("window", Json.Int window);
      ("ratio", Json.Float ratio);
      ("cell", Json.Int cell);
      ("count", Json.Int count);
      ("err", Json.Int err);
      ("score", Json.Int score);
      ("action", Json.String (match action with `Raise -> "raise" | `Lower -> "lower"));
      ("old_boost", Json.Int old_boost);
      ("new_boost", Json.Int new_boost);
      ("cooldown", Json.Int cooldown);
    ]
  | Journal.Control_applied { id; epoch; boost; levels; cells; dur_ns } ->
    [
      ("type", Json.String "control_applied");
      ("id", Json.Int id);
      ("epoch", Json.Int epoch);
      ("boost", Json.Int boost);
      ("levels", Json.Int levels);
      ("cells", Json.Int cells);
      ("dur_ns", Json.Int dur_ns);
    ]

let json_of_event (e : Journal.event) =
  Json.Obj
    (("t_ns", Json.Int (Int64.to_int e.Journal.t_ns))
    :: ("writer", Json.Int e.Journal.writer)
    :: ("seq", Json.Int e.Journal.seq)
    :: json_of_kind e.Journal.kind)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("fingerprint", Artifact.json_of_fingerprint t.fingerprint);
      ("structure", Json.String t.structure);
      ("workload", Json.String t.workload);
      ("domains", Json.Int t.domains);
      ("alert_factor", Json.Float t.alert_factor);
      ( "trigger",
        Json.Obj
          [
            ("index", Json.Int t.trigger.index);
            ("ratio", Json.Float t.trigger.ratio);
            ("factor", Json.Float t.trigger.factor);
          ] );
      ("windows", Json.List (List.map json_of_window t.windows));
      ("events", Json.List (List.map json_of_event t.events));
      ("dropped", Json.Int t.dropped);
      ( "alert",
        Json.Obj
          [
            ("active", Json.Bool t.alert.active);
            ("firing_run", Json.Int t.alert.firing_run);
            ("fired_total", Json.Int t.alert.fired_total);
          ] );
    ]

let to_string t =
  match Json.to_string_strict (to_json t) with
  | Ok s -> s
  | Error { Json.path; value } ->
    failwith
      (Printf.sprintf "Postmortem.to_string: non-finite value %h at %s — refusing to write"
         value path)

let write ~path t = Lc_obs.Export.write_file ~path (to_string t)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let cells_of_json name j =
  let* l = Jsonu.list_field name j in
  Jsonu.decode_list name
    (fun c ->
      match c with
      | Json.List [ a; b; e ] -> (
        match (Json.int_value a, Json.int_value b, Json.int_value e) with
        | Some i, Some count, Some err -> Ok (i, count, err)
        | _ -> Error "expected [item, count, err] integers")
      | _ -> Error "expected a 3-element array")
    l

let uentry_of_json j =
  let* u_inserts = Jsonu.int_field "inserts" j in
  let* u_deletes = Jsonu.int_field "deletes" j in
  let* ups = Jsonu.float_field "ups" j in
  let* u_pubs = Jsonu.int_field "publications" j in
  let* pubs_per_s = Jsonu.float_field "pubs_per_s" j in
  let* u_cells = Jsonu.int_field "cells_written" j in
  let* write_amp = Jsonu.float_field "write_amp" j in
  let* rebuild_p50_ns = Jsonu.float_field "rebuild_p50_ns" j in
  let* rebuild_p99_ns = Jsonu.float_field "rebuild_p99_ns" j in
  let* u_epoch = Jsonu.int_field "epoch" j in
  let* u_retired = Jsonu.int_field "retired_pending" j in
  let* u_reader_lag = Jsonu.int_field "reader_lag" j in
  let* cum_updates = Jsonu.int_field "cum_updates" j in
  let* cum_cells = Jsonu.int_field "cum_cells" j in
  Ok
    {
      Window.u_inserts;
      u_deletes;
      ups;
      u_pubs;
      pubs_per_s;
      u_cells;
      write_amp;
      rebuild_p50_ns;
      rebuild_p99_ns;
      u_epoch;
      u_retired;
      u_reader_lag;
      cum_updates;
      cum_cells;
    }

let gentry_of_json j =
  let* g_minor_words = Jsonu.int_field "minor_words" j in
  let* g_promoted_words = Jsonu.int_field "promoted_words" j in
  let* g_major_words = Jsonu.int_field "major_words" j in
  let* g_minor_collections = Jsonu.int_field "minor_collections" j in
  let* g_major_collections = Jsonu.int_field "major_collections" j in
  let* alloc_per_query = Jsonu.float_field "alloc_per_query" j in
  let* g_heap_words = Jsonu.int_field "heap_words" j in
  let* cum_minor_words = Jsonu.int_field "cum_minor_words" j in
  let* cum_major_collections = Jsonu.int_field "cum_major_collections" j in
  Ok
    {
      Window.g_minor_words;
      g_promoted_words;
      g_major_words;
      g_minor_collections;
      g_major_collections;
      alloc_per_query;
      g_heap_words;
      cum_minor_words;
      cum_major_collections;
    }

let window_of_json j =
  let* index = Jsonu.int_field "index" j in
  let* t_start_s = Jsonu.float_field "t_start_s" j in
  let* t_end_s = Jsonu.float_field "t_end_s" j in
  let* queries = Jsonu.int_field "queries" j in
  let* probes = Jsonu.int_field "probes" j in
  let* qps = Jsonu.float_field "qps" j in
  let* probes_per_s = Jsonu.float_field "probes_per_s" j in
  let* p50_ns = Jsonu.float_field "p50_ns" j in
  let* p99_ns = Jsonu.float_field "p99_ns" j in
  let* cells = cells_of_json "top_cells" j in
  let* max_cell = Jsonu.int_field "max_cell" j in
  let* max_share = Jsonu.float_field "max_share" j in
  let* hotspot_ratio = Jsonu.float_field "hotspot_ratio" j in
  let* alert = Jsonu.bool_field "alert" j in
  let* cum_queries = Jsonu.int_field "cum_queries" j in
  let* cum_probes = Jsonu.int_field "cum_probes" j in
  (* Optional: pre-observatory dumps (and static-workload windows) have
     no "updates" member. *)
  let* updates =
    match Json.member "updates" j with
    | None -> Ok None
    | Some u -> Result.map Option.some (Jsonu.in_context "updates" (uentry_of_json u))
  in
  (* Optional for the same reason: pre-scaling-observatory dumps have no
     "gc" member. *)
  let* gc =
    match Json.member "gc" j with
    | None -> Ok None
    | Some g -> Result.map Option.some (Jsonu.in_context "gc" (gentry_of_json g))
  in
  Ok
    {
      Window.index;
      t_start_s;
      t_end_s;
      queries;
      probes;
      qps;
      probes_per_s;
      p50_ns;
      p99_ns;
      top_cells =
        List.map (fun (item, count, err) -> { Heavy.item; count; err }) cells;
      max_cell;
      max_share;
      hotspot_ratio;
      alert;
      cum_queries;
      cum_probes;
      updates;
      gc;
    }

let kind_of_json j =
  let* ty = Jsonu.str_field "type" j in
  match ty with
  | "window_cut" ->
    let* index = Jsonu.int_field "index" j in
    let* queries = Jsonu.int_field "queries" j in
    let* qps = Jsonu.float_field "qps" j in
    let* p50_ns = Jsonu.float_field "p50_ns" j in
    let* p99_ns = Jsonu.float_field "p99_ns" j in
    let* hotspot_ratio = Jsonu.float_field "hotspot_ratio" j in
    let* alert = Jsonu.bool_field "alert" j in
    Ok (Journal.Window_cut { index; queries; qps; p50_ns; p99_ns; hotspot_ratio; alert })
  | "alert_raised" | "alert_cleared" ->
    let* index = Jsonu.int_field "index" j in
    let* ratio = Jsonu.float_field "ratio" j in
    let* factor = Jsonu.float_field "factor" j in
    Ok
      (if ty = "alert_raised" then Journal.Alert_raised { index; ratio; factor }
       else Journal.Alert_cleared { index; ratio; factor })
  | "sketch_snapshot" ->
    let* top = cells_of_json "top" j in
    Ok (Journal.Sketch_snapshot { top })
  | "stage" ->
    let* name = Jsonu.str_field "name" j in
    let* mark = Jsonu.str_field "mark" j in
    let* mark =
      match mark with
      | "begin" -> Ok `Begin
      | "end" -> Ok `End
      | m -> Error (Printf.sprintf "field \"mark\": expected \"begin\" or \"end\", got %S" m)
    in
    Ok (Journal.Stage { name; mark })
  | "publish" ->
    let* queries = Jsonu.int_field "queries" j in
    Ok (Journal.Publish { queries })
  | "epoch_publish" ->
    let* epoch = Jsonu.int_field "epoch" j in
    let* batch = Jsonu.int_field "batch" j in
    let* levels = Jsonu.int_field "levels" j in
    let* fresh_cells = Jsonu.int_field "fresh_cells" j in
    let* dur_ns = Jsonu.int_field "dur_ns" j in
    Ok (Journal.Epoch_publish { epoch; batch; levels; fresh_cells; dur_ns })
  | "level_merge" ->
    let* level = Jsonu.int_field "level" j in
    let* keys = Jsonu.int_field "keys" j in
    let* replicas = Jsonu.int_field "replicas" j in
    let* cells = Jsonu.int_field "cells" j in
    let* dur_ns = Jsonu.int_field "dur_ns" j in
    Ok (Journal.Level_merge { level; keys; replicas; cells; dur_ns })
  | "reclaim" ->
    let* epoch = Jsonu.int_field "epoch" j in
    let* freed = Jsonu.int_field "freed" j in
    let* lag = Jsonu.int_field "lag" j in
    let* pending = Jsonu.int_field "pending" j in
    Ok (Journal.Reclaim { epoch; freed; lag; pending })
  | "control_decision" ->
    let* id = Jsonu.int_field "id" j in
    let* window = Jsonu.int_field "window" j in
    let* ratio = Jsonu.float_field "ratio" j in
    let* cell = Jsonu.int_field "cell" j in
    let* count = Jsonu.int_field "count" j in
    let* err = Jsonu.int_field "err" j in
    let* score = Jsonu.int_field "score" j in
    let* action = Jsonu.str_field "action" j in
    let* action =
      match action with
      | "raise" -> Ok `Raise
      | "lower" -> Ok `Lower
      | a -> Error (Printf.sprintf "field \"action\": expected \"raise\" or \"lower\", got %S" a)
    in
    let* old_boost = Jsonu.int_field "old_boost" j in
    let* new_boost = Jsonu.int_field "new_boost" j in
    let* cooldown = Jsonu.int_field "cooldown" j in
    Ok
      (Journal.Control_decision
         { id; window; ratio; cell; count; err; score; action; old_boost; new_boost; cooldown })
  | "control_applied" ->
    let* id = Jsonu.int_field "id" j in
    let* epoch = Jsonu.int_field "epoch" j in
    let* boost = Jsonu.int_field "boost" j in
    let* levels = Jsonu.int_field "levels" j in
    let* cells = Jsonu.int_field "cells" j in
    let* dur_ns = Jsonu.int_field "dur_ns" j in
    Ok (Journal.Control_applied { id; epoch; boost; levels; cells; dur_ns })
  | ty -> Error (Printf.sprintf "unknown event type %S" ty)

let event_of_json j =
  let* t_ns = Jsonu.int_field "t_ns" j in
  let* writer = Jsonu.int_field "writer" j in
  let* seq = Jsonu.int_field "seq" j in
  let* kind = kind_of_json j in
  Ok { Journal.t_ns = Int64.of_int t_ns; writer; seq; kind }

let of_json j =
  let* () = Jsonu.check_schema ~expect:schema_name ~version:schema_version j in
  let* fingerprint = Artifact.fingerprint_of_json j in
  let* structure = Jsonu.str_field "structure" j in
  let* workload = Jsonu.str_field "workload" j in
  let* domains = Jsonu.int_field "domains" j in
  let* alert_factor = Jsonu.float_field "alert_factor" j in
  let* trigger =
    Jsonu.in_context "trigger"
    @@ let* v = Jsonu.field "trigger" j in
       let* index = Jsonu.int_field "index" v in
       let* ratio = Jsonu.float_field "ratio" v in
       let* factor = Jsonu.float_field "factor" v in
       Ok { index; ratio; factor }
  in
  let* windows_j = Jsonu.list_field "windows" j in
  let* windows = Jsonu.decode_list "windows" window_of_json windows_j in
  let* events_j = Jsonu.list_field "events" j in
  let* events = Jsonu.decode_list "events" event_of_json events_j in
  let* dropped = Jsonu.int_field "dropped" j in
  let* alert =
    Jsonu.in_context "alert"
    @@ let* v = Jsonu.field "alert" j in
       let* active = Jsonu.bool_field "active" v in
       let* firing_run = Jsonu.int_field "firing_run" v in
       let* fired_total = Jsonu.int_field "fired_total" v in
       Ok { active; firing_run; fired_total }
  in
  Ok
    {
      fingerprint;
      structure;
      workload;
      domains;
      alert_factor;
      trigger;
      windows;
      events;
      dropped;
      alert;
    }

let of_string s =
  let* j = Json.parse s in
  of_json j

let load path =
  match
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
    with Sys_error _ | End_of_file -> None
  with
  | None -> Error (Printf.sprintf "%s: cannot read" path)
  | Some s -> Jsonu.in_context path (of_string s)

(* ---------------- analysis ---------------- *)

let kind_line = function
  | Journal.Window_cut { index; queries; qps; p99_ns; hotspot_ratio; alert; _ } ->
    Printf.sprintf "window %3d cut: %d queries, %.0f q/s, p99 %.1f us, hotspot %.1fx%s" index
      queries qps (p99_ns /. 1e3) hotspot_ratio
      (if alert then "  << ALERT" else "")
  | Journal.Alert_raised { index; ratio; factor } ->
    Printf.sprintf "ALERT RAISED at window %d: ratio %.1fx > factor %.1fx" index ratio factor
  | Journal.Alert_cleared { index; ratio; factor } ->
    Printf.sprintf "alert cleared at window %d: ratio %.1fx <= factor %.1fx" index ratio factor
  | Journal.Sketch_snapshot { top } ->
    let cells =
      top
      |> List.filteri (fun i _ -> i < 4)
      |> List.map (fun (i, c, e) -> Printf.sprintf "%d:%d±%d" i c e)
      |> String.concat " "
    in
    Printf.sprintf "sketch top: %s" (if cells = "" then "(empty)" else cells)
  | Journal.Stage { name; mark } ->
    Printf.sprintf "stage %s %s" name (match mark with `Begin -> "begin" | `End -> "end")
  | Journal.Publish { queries } -> Printf.sprintf "worker published (cumulative %d queries)" queries
  | Journal.Epoch_publish { epoch; batch; levels; fresh_cells; dur_ns } ->
    Printf.sprintf "epoch %d published: %d update(s), %d level(s), %d fresh cell(s), %.1f us"
      epoch batch levels fresh_cells
      (float_of_int dur_ns /. 1e3)
  | Journal.Level_merge { level; keys; replicas; cells; dur_ns } ->
    Printf.sprintf "level %d merge: %d key(s) x %d replica(s) -> %d cell(s), %.1f us" level keys
      replicas cells
      (float_of_int dur_ns /. 1e3)
  | Journal.Reclaim { epoch; freed; lag; pending } ->
    Printf.sprintf "reclaim at epoch %d: freed %d level(s) (max lag %d), %d still retired" epoch
      freed lag pending
  | Journal.Control_decision { id; window; ratio; cell; score; action; old_boost; new_boost; cooldown; count; err } ->
    Printf.sprintf
      "CONTROL #%d at window %d: %s boost %d -> %d (ratio %.1fx, cell %d tally %d±%d, score %d, cooldown %d)"
      id window
      (match action with `Raise -> "RAISE" | `Lower -> "lower")
      old_boost new_boost ratio cell count err score cooldown
  | Journal.Control_applied { id; epoch; boost; levels; cells; dur_ns } ->
    Printf.sprintf
      "control #%d applied at epoch %d: boost %d, %d level(s) rebuilt (%d cells, %.1f us)" id
      epoch boost levels cells
      (float_of_int dur_ns /. 1e3)

let writer_label ~domains w =
  if w = 0 then "orch "
  else if w <= domains then Printf.sprintf "wrk%-2d" w
  else if w = domains + 1 then "mon  "
  else if w = domains + 2 then "bld  "
  else "ctl  "

let analyze t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "postmortem: %s / %s on %d domains (alert factor %.1fx, git %s, seed %d)\n" t.structure
    t.workload t.domains t.alert_factor
    (String.sub t.fingerprint.Artifact.git_rev 0
       (min 12 (String.length t.fingerprint.Artifact.git_rev)))
    t.fingerprint.Artifact.seed;
  add "trigger: window %d hotspot ratio %.1fx exceeded %.1fx the flat bound\n" t.trigger.index
    t.trigger.ratio t.trigger.factor;
  add "alert state at dump: %s (firing run %d, fired in %d window(s) total)\n"
    (if t.alert.active then "FIRING" else "quiet")
    t.alert.firing_run t.alert.fired_total;
  let alert_windows = List.filter (fun (w : Window.entry) -> w.Window.alert) t.windows in
  add "windows retained: %d (%d in alert)\n" (List.length t.windows) (List.length alert_windows);
  if t.dropped > 0 then add "journal: %d event(s) overwritten before the dump\n" t.dropped;
  (match t.events with
  | [] -> add "no journal events (run without a flight recorder)\n"
  | first :: _ ->
    add "\ntimeline (%d events, t0 = first retained event):\n" (List.length t.events);
    let t0 = first.Journal.t_ns in
    List.iter
      (fun (e : Journal.event) ->
        add "  +%10.3f ms  [%s]  %s\n"
          (Int64.to_float (Int64.sub e.Journal.t_ns t0) /. 1e6)
          (writer_label ~domains:t.domains e.Journal.writer)
          (kind_line e.Journal.kind))
      t.events);
  (* The hot cells as last sketched before (or at) the raise. *)
  let snap_before_raise =
    let rec scan last = function
      | [] -> last
      | { Journal.kind = Journal.Sketch_snapshot { top }; _ } :: rest -> scan (Some top) rest
      | { Journal.kind = Journal.Alert_raised _; _ } :: _ -> last
      | _ :: rest -> scan last rest
    in
    scan None t.events
  in
  (match snap_before_raise with
  | Some ((_ :: _) as top) ->
    add "\nhot cells at the raise (item: count±err):\n";
    List.iteri
      (fun i (item, count, err) -> if i < 8 then add "  cell %d: %d±%d\n" item count err)
      top
  | _ -> ());
  Buffer.contents buf
