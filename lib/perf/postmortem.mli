(** Postmortem artifacts: the flight recorder's alert-time dump.

    When a monitored run's hotspot alert transitions quiet -> firing,
    {!capture} freezes the window ring, the {!Lc_obs.Journal} event
    rings and the alert state into one schema-versioned document
    (["lowcon-postmortem"], written atomically as JSON), and {!analyze}
    reconstructs the timeline offline — which stages ran, when workers
    published, which window cut pushed the ratio over the factor, and
    what the hot-cell sketch looked like at the raise. *)

val schema_name : string
(** ["lowcon-postmortem"]. *)

val schema_version : int

type trigger = { index : int; ratio : float; factor : float }
(** The window that fired: its index, its hotspot ratio, and the alert
    factor it exceeded. *)

type alert_state = { active : bool; firing_run : int; fired_total : int }

type t = {
  fingerprint : Artifact.fingerprint;
  structure : string;
  workload : string;
  domains : int;
  alert_factor : float;
  trigger : trigger;
  windows : Lc_obs.Window.entry list;  (** The window ring at dump time, oldest first. *)
  events : Lc_obs.Journal.event list;  (** Journal events, merged in time order. *)
  dropped : int;  (** Journal events lost to ring overwrite before the dump. *)
  alert : alert_state;
}

val capture :
  fingerprint:Artifact.fingerprint ->
  structure:string ->
  workload:string ->
  domains:int ->
  trigger:Lc_obs.Window.entry ->
  Lc_parallel.Engine.Monitor.t ->
  t
(** Freeze the monitor's current state. Intended to be called from an
    [on_alert] hook (journal reads are race-safe, so capturing mid-run
    is fine — the dump is best-effort-fresh, which is what a flight
    recorder wants). *)

val to_json : t -> Lc_obs.Json.t

val to_string : t -> string
(** Strict serialisation; raises [Failure] naming the JSON path on a
    non-finite value. *)

val write : path:string -> t -> unit

val of_json : Lc_obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val load : string -> (t, string) result

val analyze : t -> string
(** The human-readable reconstruction: header (structure, trigger,
    alert state), the merged event timeline with millisecond offsets and
    writer labels, and the hot-cell sketch as last published before the
    raise. *)
