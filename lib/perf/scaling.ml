(* Scaling artifacts: one structure swept across domain counts, fitted
   to the Universal Scalability Law. The sweep driver reuses the perf
   suite's reproducibility discipline — one seed pins keys, build and
   batches; every trial reconciles telemetry against the engine result
   — and adds the scaling observatory's own invariant: each worker's
   phase attribution must sum exactly to its batch wall time, or the
   sweep refuses to fit anything. The decoded artifact is held to the
   same standard: its summary is recomputed from its points, so a
   tampered headline fails validation instead of being believed. *)

module Json = Lc_obs.Json
module Window = Lc_obs.Window
module Metrics = Lc_obs.Metrics
module Engine = Lc_parallel.Engine
module Rng = Lc_prim.Rng
module Stats = Lc_analysis.Stats
module Usl = Lc_analysis.Usl

let schema_name = "lowcon-scaling"
let schema_version = 1

type phase_totals = {
  probe_ns : int;
  tally_ns : int;
  publish_ns : int;
  pin_ns : int;
  other_ns : int;
  wall_ns : int;
  idle_ns : int;
}

type gc_totals = {
  minor_words : int;
  promoted_words : int;
  major_words : int;
  minor_words_per_query : float;
}

type point = {
  p_domains : int;
  p_trials : int;
  throughput : Artifact.ci;
  p_ns_per_query : float;
  p_phases : phase_totals;
  p_gc : gc_totals;
  p_queries : int;
}

type summary = {
  s_points : int;
  s_peak_qps : float;
  s_peak_domains : int;
  s_sigma : float option;
  s_kappa : float option;
}

type t = {
  fingerprint : Artifact.fingerprint;
  structure : string;
  workload : string;
  queries_per_domain : int;
  trials : int;
  points : point list;
  fit : Usl.fit option;
  fit_error : string option;
  summary : summary;
}

type spec = {
  structure : string;
  workload : string;
  domain_counts : int list;
  queries_per_domain : int;
  trials : int;
  n : int;
}

(* ---------------- the sweep driver ---------------- *)

let validate_spec s =
  if s.domain_counts = [] then invalid_arg "Scaling.run: empty domain_counts";
  if s.trials < 1 then invalid_arg "Scaling.run: trials must be >= 1";
  if s.queries_per_domain < 1 then invalid_arg "Scaling.run: queries_per_domain must be >= 1";
  if s.n < 1 then invalid_arg "Scaling.run: n must be >= 1";
  let rec check = function
    | [] -> ()
    | d :: _ when d < 1 -> invalid_arg "Scaling.run: domains must be >= 1"
    | d :: d' :: _ when d' <= d ->
      invalid_arg "Scaling.run: domain_counts must be ascending and distinct"
    | _ :: rest -> check rest
  in
  check s.domain_counts

(* Same universe derivation as Suite and the CLI. *)
let universe_for n = min (max (16 * n) (n * n)) (1 lsl 28)

(* Frozen seed arithmetic, disjoint from Suite's combo stream: the
   sweep's instance/workload seed and per-(domains, trial) batch seeds
   derive from --seed by fixed multipliers. *)
let combo_seed ~seed = seed + 7919
let trial_seed ~seed ~domains t = seed + (1013 * domains) + (257 * (t + 1))

let zero_phases =
  { probe_ns = 0; tally_ns = 0; publish_ns = 0; pin_ns = 0; other_ns = 0; wall_ns = 0; idle_ns = 0 }

let add_phases a b =
  {
    probe_ns = a.probe_ns + b.probe_ns;
    tally_ns = a.tally_ns + b.tally_ns;
    publish_ns = a.publish_ns + b.publish_ns;
    pin_ns = a.pin_ns + b.pin_ns;
    other_ns = a.other_ns + b.other_ns;
    wall_ns = a.wall_ns + b.wall_ns;
    idle_ns = a.idle_ns + b.idle_ns;
  }

let counter snap name =
  match Metrics.Snapshot.counter_value snap name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Scaling.run: counter %s missing from snapshot" name)

(* The attribution invariant the artifact stands on: every worker's
   five in-wall phases sum exactly to its batch wall time. *)
let check_phases (phases : Engine.phase_stats array) =
  Array.iter
    (fun (ph : Engine.phase_stats) ->
      let parts =
        ph.Engine.ph_probe_ns + ph.Engine.ph_tally_ns + ph.Engine.ph_publish_ns
        + ph.Engine.ph_pin_ns + ph.Engine.ph_other_ns
      in
      if parts <> ph.Engine.ph_wall_ns then
        failwith
          (Printf.sprintf
             "Scaling.run: worker %d phases sum to %d ns but wall is %d ns — attribution \
              does not reconcile" ph.Engine.ph_domain parts ph.Engine.ph_wall_ns))
    phases

let run_trial ~inst ~qd ~queries_per_domain ~domains ~seed =
  let obs = Lc_obs.Obs.create () in
  let cfg = Engine.Config.make ~obs ~domains ~seed () in
  let o = Engine.run cfg (Engine.Static { inst; qdist = qd; queries_per_domain }) in
  let r = o.Engine.result in
  let phases =
    match o.Engine.phases with
    | Some p -> p
    | None -> failwith "Scaling.run: instrumented run carried no phase accounting"
  in
  check_phases phases;
  let snap = Lc_obs.Obs.snapshot obs in
  let q = counter snap "engine_queries_total" in
  if q <> r.Engine.queries then
    failwith
      (Printf.sprintf "Scaling.run: engine_queries_total %d <> result queries %d — telemetry \
                       does not reconcile" q r.Engine.queries);
  let sum f = Array.fold_left (fun a ph -> a + f ph) 0 phases in
  let gcn = Engine.gc_metric_names in
  ( r,
    {
      probe_ns = sum (fun ph -> ph.Engine.ph_probe_ns);
      tally_ns = sum (fun ph -> ph.Engine.ph_tally_ns);
      publish_ns = sum (fun ph -> ph.Engine.ph_publish_ns);
      pin_ns = sum (fun ph -> ph.Engine.ph_pin_ns);
      other_ns = sum (fun ph -> ph.Engine.ph_other_ns);
      wall_ns = sum (fun ph -> ph.Engine.ph_wall_ns);
      idle_ns = sum (fun ph -> ph.Engine.ph_idle_ns);
    },
    ( counter snap gcn.Window.minor_words_counter,
      counter snap gcn.Window.promoted_words_counter,
      counter snap gcn.Window.major_words_counter ) )

let summary_of ~points ~(fit : Usl.fit option) =
  let s_peak_qps, s_peak_domains =
    List.fold_left
      (fun (bq, bd) p ->
        if p.throughput.Artifact.mean > bq then (p.throughput.Artifact.mean, p.p_domains)
        else (bq, bd))
      (neg_infinity, 0) points
  in
  {
    s_points = List.length points;
    s_peak_qps;
    s_peak_domains;
    s_sigma = Option.map (fun (f : Usl.fit) -> f.Usl.sigma) fit;
    s_kappa = Option.map (fun (f : Usl.fit) -> f.Usl.kappa) fit;
  }

let run ?(progress = fun (_ : string) -> ()) ~seed spec =
  validate_spec spec;
  let universe = universe_for spec.n in
  let rng = Rng.create (combo_seed ~seed) in
  (* One instance and one query distribution for the whole sweep:
     throughput(n) must vary only in n. *)
  let keys = Lc_workload.Keyset.random rng ~universe ~n:spec.n in
  let inst = Select.structure rng ~universe ~keys spec.structure in
  let qd = Select.workload rng ~universe ~keys spec.workload in
  let boot_rng = Rng.create (seed lxor 0x5ca1e) in
  let ci_of samples =
    let arr = Array.of_list samples in
    let lo, hi = Stats.bootstrap_ci ~rng:boot_rng arr in
    { Artifact.mean = Stats.mean arr; lo; hi; samples }
  in
  let points =
    List.map
      (fun d ->
        progress
          (Printf.sprintf "%s / %s / %d domains (%d trials)" spec.structure spec.workload d
             spec.trials);
        let outs =
          List.init spec.trials (fun t ->
              run_trial ~inst ~qd ~queries_per_domain:spec.queries_per_domain ~domains:d
                ~seed:(trial_seed ~seed ~domains:d t))
        in
        let pick f = List.map f outs in
        let p_queries = List.fold_left (fun a (r, _, _) -> a + r.Engine.queries) 0 outs in
        let p_phases =
          List.fold_left (fun a (_, p, _) -> add_phases a p) zero_phases outs
        in
        let gsum f = List.fold_left (fun a (_, _, g) -> a + f g) 0 outs in
        let minor_words = gsum (fun (m, _, _) -> m) in
        {
          p_domains = d;
          p_trials = spec.trials;
          throughput = ci_of (pick (fun (r, _, _) -> r.Engine.throughput));
          p_ns_per_query =
            Stats.mean
              (Array.of_list
                 (pick (fun (r, _, _) ->
                      r.Engine.seconds *. 1e9 /. float_of_int r.Engine.queries)));
          p_phases;
          p_gc =
            {
              minor_words;
              promoted_words = gsum (fun (_, p, _) -> p);
              major_words = gsum (fun (_, _, m) -> m);
              minor_words_per_query = float_of_int minor_words /. float_of_int p_queries;
            };
          p_queries;
        })
      spec.domain_counts
  in
  let fit, fit_error =
    match Usl.fit (List.map (fun p -> (p.p_domains, p.throughput.Artifact.mean)) points) with
    | Ok f -> (Some f, None)
    | Error e -> (None, Some e)
  in
  {
    fingerprint = Artifact.fingerprint ~seed;
    structure = spec.structure;
    workload = spec.workload;
    queries_per_domain = spec.queries_per_domain;
    trials = spec.trials;
    points;
    fit;
    fit_error;
    summary = summary_of ~points ~fit;
  }

(* ---------------- encoding ---------------- *)

let json_of_phases p =
  Json.Obj
    [
      ("probe_ns", Json.Int p.probe_ns);
      ("tally_ns", Json.Int p.tally_ns);
      ("publish_ns", Json.Int p.publish_ns);
      ("pin_ns", Json.Int p.pin_ns);
      ("other_ns", Json.Int p.other_ns);
      ("wall_ns", Json.Int p.wall_ns);
      ("idle_ns", Json.Int p.idle_ns);
    ]

let json_of_gc g =
  Json.Obj
    [
      ("minor_words", Json.Int g.minor_words);
      ("promoted_words", Json.Int g.promoted_words);
      ("major_words", Json.Int g.major_words);
      ("minor_words_per_query", Json.Float g.minor_words_per_query);
    ]

let json_of_point p =
  Json.Obj
    [
      ("domains", Json.Int p.p_domains);
      ("trials", Json.Int p.p_trials);
      ("throughput", Artifact.json_of_ci p.throughput);
      ("ns_per_query", Json.Float p.p_ns_per_query);
      ("phases", json_of_phases p.p_phases);
      ("gc", json_of_gc p.p_gc);
      ("queries", Json.Int p.p_queries);
    ]

let json_of_summary s =
  Json.Obj
    ([
       ("points", Json.Int s.s_points);
       ("peak_qps", Json.Float s.s_peak_qps);
       ("peak_domains", Json.Int s.s_peak_domains);
     ]
    @ (match s.s_sigma with Some v -> [ ("sigma", Json.Float v) ] | None -> [])
    @ match s.s_kappa with Some v -> [ ("kappa", Json.Float v) ] | None -> [])

let to_json t =
  Json.Obj
    ([
       ("schema", Json.String schema_name);
       ("version", Json.Int schema_version);
       ("fingerprint", Artifact.json_of_fingerprint t.fingerprint);
       ("structure", Json.String t.structure);
       ("workload", Json.String t.workload);
       ("queries_per_domain", Json.Int t.queries_per_domain);
       ("trials", Json.Int t.trials);
       ("points", Json.List (List.map json_of_point t.points));
     ]
    @ (match t.fit with
      | Some f ->
        [
          ( "fit",
            Json.Obj
              [
                ("lambda", Json.Float f.Usl.lambda);
                ("sigma", Json.Float f.Usl.sigma);
                ("kappa", Json.Float f.Usl.kappa);
                ("r2", Json.Float f.Usl.r2);
              ] );
        ]
      | None -> [])
    @ (match t.fit_error with Some e -> [ ("fit_error", Json.String e) ] | None -> [])
    @ [ ("summary", json_of_summary t.summary) ])

let to_string t =
  match Json.to_string_strict (to_json t) with
  | Ok s -> s
  | Error { Json.path; value } ->
    failwith
      (Printf.sprintf "Scaling.to_string: non-finite value %h at %s — refusing to write" value
         path)

let write ~path t = Lc_obs.Export.write_file ~path (to_string t)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let phases_of_json j =
  let* probe_ns = Jsonu.int_field "probe_ns" j in
  let* tally_ns = Jsonu.int_field "tally_ns" j in
  let* publish_ns = Jsonu.int_field "publish_ns" j in
  let* pin_ns = Jsonu.int_field "pin_ns" j in
  let* other_ns = Jsonu.int_field "other_ns" j in
  let* wall_ns = Jsonu.int_field "wall_ns" j in
  let* idle_ns = Jsonu.int_field "idle_ns" j in
  let parts = probe_ns + tally_ns + publish_ns + pin_ns + other_ns in
  if parts <> wall_ns then
    Error
      (Printf.sprintf "phases sum to %d ns but wall_ns is %d — attribution does not reconcile"
         parts wall_ns)
  else Ok { probe_ns; tally_ns; publish_ns; pin_ns; other_ns; wall_ns; idle_ns }

let gc_of_json j =
  let* minor_words = Jsonu.int_field "minor_words" j in
  let* promoted_words = Jsonu.int_field "promoted_words" j in
  let* major_words = Jsonu.int_field "major_words" j in
  let* minor_words_per_query = Jsonu.float_field "minor_words_per_query" j in
  Ok { minor_words; promoted_words; major_words; minor_words_per_query }

let point_of_json i j =
  Jsonu.in_context (Printf.sprintf "points[%d]" i)
  @@ let* p_domains = Jsonu.int_field "domains" j in
     let* p_trials = Jsonu.int_field "trials" j in
     let* throughput = Artifact.ci_of_json "throughput" j in
     let* p_ns_per_query = Jsonu.float_field "ns_per_query" j in
     let* ph = Jsonu.field "phases" j in
     let* p_phases = Jsonu.in_context "phases" (phases_of_json ph) in
     let* g = Jsonu.field "gc" j in
     let* p_gc = Jsonu.in_context "gc" (gc_of_json g) in
     let* p_queries = Jsonu.int_field "queries" j in
     if p_domains < 1 then Error "domains must be >= 1"
     else if p_trials < 1 then Error "trials must be >= 1"
     else Ok { p_domains; p_trials; throughput; p_ns_per_query; p_phases; p_gc; p_queries }

let fit_of_json j =
  let* lambda = Jsonu.float_field "lambda" j in
  let* sigma = Jsonu.float_field "sigma" j in
  let* kappa = Jsonu.float_field "kappa" j in
  let* r2 = Jsonu.float_field "r2" j in
  if lambda <= 0.0 then Error "fit lambda must be positive"
  else if sigma < 0.0 || kappa < 0.0 then Error "fit sigma/kappa must be non-negative"
  else Ok { Usl.lambda; sigma; kappa; r2 }

let summary_of_json j =
  Jsonu.in_context "summary"
  @@ let* v = Jsonu.field "summary" j in
     let* s_points = Jsonu.int_field "points" v in
     let* s_peak_qps = Jsonu.float_field "peak_qps" v in
     let* s_peak_domains = Jsonu.int_field "peak_domains" v in
     let opt name =
       match Json.member name v with
       | None -> Ok None
       | Some f -> (
         match Json.float_value f with
         | Some x -> Ok (Some x)
         | None -> Error (Printf.sprintf "field %S: expected a number" name))
     in
     let* s_sigma = opt "sigma" in
     let* s_kappa = opt "kappa" in
     Ok { s_points; s_peak_qps; s_peak_domains; s_sigma; s_kappa }

(* Tamper detection: the summary is derived data, so a decoded document
   must agree with a recomputation from its own points. Float fields get
   a tiny relative tolerance for the JSON round-trip. *)
let close a b =
  a = b || Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b)

let close_opt a b =
  match (a, b) with Some a, Some b -> close a b | None, None -> true | _ -> false

let check_summary ~stored ~computed =
  if
    stored.s_points <> computed.s_points
    || stored.s_peak_domains <> computed.s_peak_domains
    || not (close stored.s_peak_qps computed.s_peak_qps)
    || not (close_opt stored.s_sigma computed.s_sigma)
    || not (close_opt stored.s_kappa computed.s_kappa)
  then Error "summary does not match a recomputation from points — tampered or corrupt"
  else Ok ()

let of_json j =
  let* () = Jsonu.check_schema ~expect:schema_name ~version:schema_version j in
  let* fingerprint = Artifact.fingerprint_of_json j in
  let* structure = Jsonu.str_field "structure" j in
  let* workload = Jsonu.str_field "workload" j in
  let* queries_per_domain = Jsonu.int_field "queries_per_domain" j in
  let* trials = Jsonu.int_field "trials" j in
  let* points_j = Jsonu.list_field "points" j in
  let* points =
    List.fold_right
      (fun (i, p) acc ->
        let* acc = acc in
        let* p = point_of_json i p in
        Ok (p :: acc))
      (List.mapi (fun i p -> (i, p)) points_j)
      (Ok [])
  in
  let* () =
    if points = [] then Error "points: must be non-empty"
    else
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          if b.p_domains <= a.p_domains then
            Error "points: domain counts must be ascending and distinct"
          else ordered rest
        | _ -> Ok ()
      in
      ordered points
  in
  let* fit =
    match Json.member "fit" j with
    | None -> Ok None
    | Some f -> Result.map Option.some (Jsonu.in_context "fit" (fit_of_json f))
  in
  let* fit_error =
    match Json.member "fit_error" j with
    | None -> Ok None
    | Some _ -> Result.map Option.some (Jsonu.str_field "fit_error" j)
  in
  let* () =
    match (fit, fit_error) with
    | Some _, None | None, Some _ -> Ok ()
    | Some _, Some _ -> Error "both fit and fit_error present — exactly one is allowed"
    | None, None -> Error "neither fit nor fit_error present — exactly one is required"
  in
  let* summary = summary_of_json j in
  let* () = check_summary ~stored:summary ~computed:(summary_of ~points ~fit) in
  Ok { fingerprint; structure; workload; queries_per_domain; trials; points; fit; fit_error; summary }

let of_string s =
  let* j = Json.parse s in
  of_json j

let load path =
  match
    (try Some (In_channel.with_open_bin path In_channel.input_all) with Sys_error _ -> None)
  with
  | None -> Error (Printf.sprintf "%s: cannot read" path)
  | Some s -> Jsonu.in_context path (of_string s)

(* ---------------- rendering ---------------- *)

let render (t : t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "scaling observatory: %s / %s (%d trials x %d queries/domain)\n" t.structure
       t.workload t.trials t.queries_per_domain);
  Buffer.add_string b
    (Printf.sprintf "%8s %12s %10s %7s %7s %8s %6s %7s %7s %9s\n" "domains" "qps" "ns/query"
       "probe%" "tally%" "publish%" "pin%" "other%" "idle%" "alloc/q");
  List.iter
    (fun p ->
      let share x =
        if p.p_phases.wall_ns = 0 then 0.0
        else 100.0 *. float_of_int x /. float_of_int p.p_phases.wall_ns
      in
      Buffer.add_string b
        (Printf.sprintf "%8d %12.0f %10.1f %7.1f %7.1f %8.1f %6.1f %7.1f %7.1f %9.2f\n"
           p.p_domains p.throughput.Artifact.mean p.p_ns_per_query
           (share p.p_phases.probe_ns) (share p.p_phases.tally_ns)
           (share p.p_phases.publish_ns) (share p.p_phases.pin_ns)
           (share p.p_phases.other_ns) (share p.p_phases.idle_ns)
           p.p_gc.minor_words_per_query))
    t.points;
  (match (t.fit, t.fit_error) with
  | Some f, _ ->
    Buffer.add_string b
      (Printf.sprintf "USL fit: lambda=%.0f qps/domain  sigma=%.4f  kappa=%.6f  r2=%.4f\n"
         f.Usl.lambda f.Usl.sigma f.Usl.kappa f.Usl.r2);
    (match Usl.peak f with
    | Some n -> Buffer.add_string b (Printf.sprintf "predicted peak near %.1f domains\n" n)
    | None -> Buffer.add_string b "fitted curve is monotone (no interior peak)\n")
  | None, Some e -> Buffer.add_string b (Printf.sprintf "USL fit rejected: %s\n" e)
  | None, None -> ());
  Buffer.contents b
