(** The scaling observatory's offline artifact: one structure served
    across a sweep of domain counts, each point carrying throughput,
    per-phase time attribution and GC telemetry, the whole curve fitted
    to Gunther's USL ({!Lc_analysis.Usl}).

    Where a bench artifact ({!Artifact}) answers "how fast is this
    configuration", a scaling artifact answers "{e why} does it stop
    getting faster": the fitted [sigma] is the serialisation
    coefficient the paper's replication argument is supposed to shrink,
    the phase shares say where the worker time actually went, and the
    allocation gauges rule GC in or out as the confound.

    Same trust discipline as {!Artifact}: schema name + version checked
    before any field is believed, non-finite floats refused at write
    time, and the embedded summary is {e recomputed from the points} at
    decode time — a dump whose summary disagrees with its own data is
    rejected, not repaired. *)

val schema_name : string
(** ["lowcon-scaling"]. Distinct from the engine's live
    ["lowcon-scaling-live"] route document: this is a fitted offline
    sweep, that is one run's cumulative telemetry. *)

val schema_version : int

type phase_totals = {
  probe_ns : int;
      (** Worker ns inside the dictionary's [mem], summed over workers
          and trials (pin time excluded for dynamic runs). *)
  tally_ns : int;  (** Per-query telemetry recording. *)
  publish_ns : int;  (** Seqlock window publishes + GC sampling. *)
  pin_ns : int;  (** Epoch pin/unpin announcements; 0 for static runs. *)
  other_ns : int;  (** Residual: loop overhead, accounting, GC pauses. *)
  wall_ns : int;
      (** Total worker batch wall; equals the sum of the five phases
          above by construction (checked per worker before a trial is
          believed). *)
  idle_ns : int;  (** Serve wall minus batch wall, summed over workers. *)
}
(** Engine phase accounting ({!Lc_parallel.Engine.phase_stats}) summed
    over workers and trials for one sweep point. *)

type gc_totals = {
  minor_words : int;  (** Minor-heap words allocated by worker domains. *)
  promoted_words : int;
  major_words : int;
  minor_words_per_query : float;
      (** [minor_words / queries] — the allocation-per-query gauge; the
          engine hot path keeps this at 0. *)
}
(** GC telemetry summed over workers and trials for one sweep point. *)

type point = {
  p_domains : int;
  p_trials : int;
  throughput : Artifact.ci;  (** Queries/s; one sample per trial. *)
  p_ns_per_query : float;  (** Mean over trials. *)
  p_phases : phase_totals;
  p_gc : gc_totals;
  p_queries : int;  (** Total queries across the point's trials. *)
}

type summary = {
  s_points : int;
  s_peak_qps : float;  (** Best mean throughput across points. *)
  s_peak_domains : int;  (** The domain count that achieved it. *)
  s_sigma : float option;  (** Fitted contention coefficient, if fitted. *)
  s_kappa : float option;
}
(** The derived headline — recomputed from [points]/[fit] at decode
    time and compared against the stored copy, so a hand-edited summary
    fails validation. *)

type t = {
  fingerprint : Artifact.fingerprint;
  structure : string;  (** {!Select.structure} name. *)
  workload : string;  (** {!Select.workload} spec. *)
  queries_per_domain : int;
  trials : int;
  points : point list;  (** Ascending, distinct domain counts. *)
  fit : Lc_analysis.Usl.fit option;
      (** The USL fit; [None] when the sweep is too degenerate to fit
          (fewer than three points, flat curve — see
          {!Lc_analysis.Usl.fit}), in which case [fit_error] says why.
          Exactly one of [fit] / [fit_error] is present. *)
  fit_error : string option;
  summary : summary;
}

type spec = {
  structure : string;
  workload : string;
  domain_counts : int list;  (** Must be distinct, positive, ascending. *)
  queries_per_domain : int;
  trials : int;
  n : int;  (** Keys; universe derived as in the CLI. *)
}

val run : ?progress:(string -> unit) -> seed:int -> spec -> t
(** Serve the sweep and return the artifact (not yet written). One
    instance and one query distribution, built from the combo seed, are
    shared by every point so throughput(n) compares like against like;
    each trial runs against a fresh telemetry handle. Per trial, the
    engine's telemetry counters are reconciled exactly against the
    result totals and each worker's phase record is checked to sum to
    its batch wall time — a sweep whose attribution does not reconcile
    raises instead of fitting garbage. Raises [Invalid_argument] on a
    degenerate spec, [Failure] on reconciliation mismatch. *)

val to_json : t -> Lc_obs.Json.t
val to_string : t -> string
(** Raises [Failure] on non-finite floats, like {!Artifact.to_string}. *)

val of_json : Lc_obs.Json.t -> (t, string) result
(** Validates schema name/version, point ordering, the fit/fit_error
    exclusivity, and recomputes the summary from the decoded points —
    a tampered or truncated document is rejected with a path-qualified
    reason. *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result
val write : path:string -> t -> unit

val render : t -> string
(** The human table [lowcon scale] prints: one row per point (domains,
    qps, ns/query, phase shares of worker wall, alloc/query) and the
    fitted lambda / sigma / kappa / r2 line (or the fit-rejection
    reason), with the USL-predicted peak when the fit has one. *)
