(* Structure and workload selection by name — the one vocabulary shared
   by the perf suite, the CLI and the artifact schema, so an entry's
   (structure, workload) key in a BENCH_*.json written today still names
   the same configuration when diffed months later. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Keyset = Lc_workload.Keyset

let structure_names = [ "lc"; "fks-norepl"; "fks"; "dm"; "cuckoo"; "binary" ]

let dynamic_name = "lc-dyn"

let structure ?obs rng ~universe ~keys = function
  | "lc" -> Lc_dict.Instance.uninstrumented
              (Lc_core.Dictionary.instance (Lc_core.Dictionary.build ?obs rng ~universe ~keys))
  | "fks-norepl" ->
    Lc_dict.Instance.uninstrumented
      (Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys))
  | "fks" ->
    Lc_dict.Instance.uninstrumented
      (Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys))
  | "dm" ->
    Lc_dict.Instance.uninstrumented
      (Lc_dict.Dm_dict.instance (Lc_dict.Dm_dict.build rng ~universe ~keys))
  | "cuckoo" ->
    Lc_dict.Instance.uninstrumented
      (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys))
  | "binary" ->
    Lc_dict.Instance.uninstrumented
      (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys))
  | s -> failwith (Printf.sprintf "unknown structure %S (want one of %s)" s
                     (String.concat ", " structure_names))

let ops_handle ?small_level_boost rng ~universe ~keys name =
  if String.equal name dynamic_name then begin
    let d = Lc_dynamic.Dynamic.create ?small_level_boost rng ~universe () in
    Array.iter (fun k -> Lc_dynamic.Dynamic.insert d k) keys;
    Lc_dynamic.Dynamic.ops_handle d
  end
  else Lc_dict.Instance.ops_handle (structure rng ~universe ~keys name)

let workload rng ~universe ~keys spec =
  let negs () = Keyset.negatives rng ~universe ~keys ~count:(8 * Array.length keys) in
  match String.split_on_char ':' spec with
  | [ "pos" ] -> Qdist.uniform ~name:"uniform-positive" keys
  | [ "neg" ] -> Qdist.uniform ~name:"uniform-negative" (negs ())
  | [ "point" ] -> Qdist.point keys.(0)
  | [ "mix"; p ] -> (
    match float_of_string_opt p with
    | Some p_pos when p_pos >= 0.0 && p_pos <= 1.0 ->
      Qdist.pos_neg ~pos:keys ~neg:(negs ()) ~p_pos
    | _ -> failwith (Printf.sprintf "bad mix probability in %S" spec))
  | [ "zipf"; s ] -> (
    match float_of_string_opt s with
    | Some skew when skew >= 0.0 -> Qdist.zipf ~skew keys
    | _ -> failwith (Printf.sprintf "bad zipf skew in %S" spec))
  | _ -> failwith (Printf.sprintf "unknown distribution %S" spec)

let rw_fraction spec =
  match String.split_on_char ':' spec with
  | [ "rw"; f ] -> (
    match float_of_string_opt f with
    | Some r when r >= 0.0 && r <= 1.0 -> Some r
    | _ -> failwith (Printf.sprintf "bad read fraction in %S (want rw:F, F in [0,1])" spec))
  | _ -> None

let flash_share spec =
  match String.split_on_char ':' spec with
  | [ "flash"; s ] -> (
    match float_of_string_opt s with
    | Some r when r >= 0.0 && r <= 1.0 -> Some r
    | _ -> failwith (Printf.sprintf "bad hot share in %S (want flash:S, S in [0,1])" spec))
  | _ -> None

let cost spec =
  match String.split_on_char ':' spec with
  | [ "free" ] -> Lc_parallel.Engine.Free
  | [ "spin"; h ] -> (
    match int_of_string_opt h with
    | Some hold when hold >= 0 -> Lc_parallel.Engine.Spinlock { hold }
    | _ -> failwith (Printf.sprintf "bad spin hold in %S" spec))
  | _ -> failwith (Printf.sprintf "unknown cost model %S (want 'free' or 'spin:H')" spec)
