(** Structure and workload selection by name.

    The perf suite, the differ and the CLI all key configurations by
    [(structure, workload)] name pairs; this module is the single place
    those names are interpreted, so a committed artifact's keys stay
    meaningful across sessions. *)

val structure_names : string list
(** ["lc"; "fks-norepl"; "fks"; "dm"; "cuckoo"; "binary"]. *)

val dynamic_name : string
(** ["lc-dyn"] — the epoch-published dynamic dictionary's name in
    artifact keys and CLI selection. Not a {!structure} name: it has no
    static instance; the mixed serving path builds an
    [Lc_dynamic.Epoch.t] instead. *)

val structure :
  ?obs:Lc_obs.Obs.t ->
  Lc_prim.Rng.t ->
  universe:int ->
  keys:int array ->
  string ->
  Lc_dict.Instance.t
(** Build the named structure over [keys], in {e uninstrumented}
    (reentrant) mode — what the serving engine wants. [obs] wires the
    build into the observability layer where the builder supports it
    (currently ["lc"]'s construction spans); other structures ignore
    it. Raises [Failure] on an unknown name. *)

val ops_handle :
  ?small_level_boost:int ->
  Lc_prim.Rng.t ->
  universe:int ->
  keys:int array ->
  string ->
  Lc_dict.Ops_intf.handle
(** The named structure as a uniform {!Lc_dict.Ops_intf.S} handle,
    preloaded with [keys]: {!dynamic_name} builds a (sequential)
    [Lc_dynamic.Dynamic] and inserts the keys; any {!structure} name
    builds the static instance (updates raise, by design).
    [small_level_boost] applies to the dynamic structure only. *)

val workload :
  Lc_prim.Rng.t -> universe:int -> keys:int array -> string -> Lc_cellprobe.Qdist.t
(** Parse a workload spec: ['pos'], ['neg'], ['point'], ['mix:P'],
    ['zipf:S']. Raises [Failure] on a malformed spec. *)

val rw_fraction : string -> float option
(** [rw_fraction "rw:F"] is [Some F] — the read fraction of a mixed
    read-write op-stream workload (the remaining mass splits evenly
    between inserts and deletes, {!Lc_workload.Opstream.read_write_mix}).
    [None] for any other spec shape (use {!workload} then); raises
    [Failure] if the spec looks like [rw:...] but [F] is not a
    probability. *)

val flash_share : string -> float option
(** [flash_share "flash:S"] is [Some S] — the post-offset hot share of
    a flash-crowd op stream ({!Lc_workload.Opstream.point_mass}), a
    query-only stream for the dynamic structure that slams one key from
    a third of the way in. [None] for any other spec shape; raises
    [Failure] if the spec looks like [flash:...] but [S] is not a
    probability. *)

val cost : string -> Lc_parallel.Engine.cost
(** Parse a probe cost model: ['free'] or ['spin:H] (per-cell spinlock
    held [H] extra relax loops). Raises [Failure] on a malformed
    spec. *)
