(** Structure and workload selection by name.

    The perf suite, the differ and the CLI all key configurations by
    [(structure, workload)] name pairs; this module is the single place
    those names are interpreted, so a committed artifact's keys stay
    meaningful across sessions. *)

val structure_names : string list
(** ["lc"; "fks-norepl"; "fks"; "dm"; "cuckoo"; "binary"]. *)

val structure :
  Lc_prim.Rng.t -> universe:int -> keys:int array -> string -> Lc_dict.Instance.t
(** Build the named structure over [keys], in {e uninstrumented}
    (reentrant) mode — what the serving engine wants. Raises [Failure]
    on an unknown name. *)

val workload :
  Lc_prim.Rng.t -> universe:int -> keys:int array -> string -> Lc_cellprobe.Qdist.t
(** Parse a workload spec: ['pos'], ['neg'], ['point'], ['mix:P'],
    ['zipf:S']. Raises [Failure] on a malformed spec. *)
