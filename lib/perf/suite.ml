(* The perf suite: run the serving engine over a grid of
   structure x workload x domain-count configurations and distil each
   into an Artifact entry.

   Reproducibility discipline: one --seed pins everything. Each
   configuration derives a combo seed (keys, structure build, workload
   sampling), each trial a trial seed (engine batches), and the
   bootstrap its own; nothing reads the wall clock except the timings
   being measured and the fingerprint. Every trial runs against a fresh
   Monitor and a fresh Obs handle, and its counters are reconciled
   exactly against the engine's result totals before the trial is
   believed — an artifact whose telemetry disagrees with its ground
   truth must never be written.

   The mixed axis (rw_workloads x rw_domain_counts) serves the
   epoch-published dynamic dictionary under a read-write op stream
   through the same discipline: reader-side telemetry must reconcile
   with the engine result AND with the structure's own per-cell tallies
   (live + retired + drained), or the trial refuses to exist. Mixed
   combos are enumerated after the static ones, so adding the axis
   never re-seeds an existing configuration. *)

module Rng = Lc_prim.Rng
module Engine = Lc_parallel.Engine
module Epoch = Lc_dynamic.Epoch
module Opstream = Lc_workload.Opstream
module Metrics = Lc_obs.Metrics
module Stats = Lc_analysis.Stats

type spec = {
  structures : string list;
  workloads : string list;
  domain_counts : int list;
  queries_per_domain : int;
  trials : int;
  n : int;
  rw_workloads : string list;
  rw_domain_counts : int list;
  ops_per_domain : int;
}

let default =
  {
    structures = [ "lc"; "fks-norepl"; "binary" ];
    workloads = [ "pos"; "zipf:1.0" ];
    domain_counts = [ 1; 2 ];
    queries_per_domain = 2000;
    trials = 5;
    n = 512;
    rw_workloads = [ "rw:0.90" ];
    rw_domain_counts = [ 1; 2; 3; 4 ];
    ops_per_domain = 2000;
  }

let quick =
  {
    structures = [ "lc"; "fks-norepl" ];
    workloads = [ "pos" ];
    domain_counts = [ 2 ];
    queries_per_domain = 500;
    trials = 3;
    n = 256;
    rw_workloads = [ "rw:0.90" ];
    rw_domain_counts = [ 2 ];
    ops_per_domain = 500;
  }

let validate_spec s =
  if (s.structures = [] || s.workloads = [] || s.domain_counts = []) && s.rw_workloads = []
  then invalid_arg "Suite.run: empty configuration axis";
  if s.trials < 1 then invalid_arg "Suite.run: trials must be >= 1";
  if s.queries_per_domain < 1 then invalid_arg "Suite.run: queries_per_domain must be >= 1";
  if s.n < 1 then invalid_arg "Suite.run: n must be >= 1";
  List.iter (fun d -> if d < 1 then invalid_arg "Suite.run: domains must be >= 1") s.domain_counts;
  if s.rw_workloads <> [] then begin
    if s.rw_domain_counts = [] then
      invalid_arg "Suite.run: rw_workloads set but rw_domain_counts empty";
    if s.ops_per_domain < 1 then invalid_arg "Suite.run: ops_per_domain must be >= 1";
    List.iter
      (fun d -> if d < 1 then invalid_arg "Suite.run: domains must be >= 1")
      s.rw_domain_counts
  end

let universe_for n = min (max (16 * n) (n * n)) (1 lsl 28)

(* Distinct odd multipliers keep combo and trial streams disjoint for
   any base seed; exact values are arbitrary but frozen — changing them
   changes every committed artifact. *)
let combo_seed ~seed i = seed + (1009 * (i + 1))
let trial_seed ~combo t = combo + (131 * (t + 1))

let reconcile ~(r : Engine.result) snap =
  let counter name =
    match Metrics.Snapshot.counter_value snap name with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Suite.run: counter %s missing from snapshot" name)
  in
  let q = counter "engine_queries_total" and p = counter "engine_probes_total" in
  if q <> r.queries then
    failwith
      (Printf.sprintf "Suite.run: engine_queries_total %d <> result queries %d — telemetry \
                       does not reconcile" q r.queries);
  if p <> r.total_probes then
    failwith
      (Printf.sprintf "Suite.run: engine_probes_total %d <> result probes %d — telemetry \
                       does not reconcile" p r.total_probes)

type trial_out = {
  ns_per_query : float;
  probes_per_query : float;
  p50 : float;
  p99 : float;
  ratio : float;
  t_queries : int;
  t_probes : int;
  t_ns_per_update : float option;  (* builder wall ns / update ops; dynamic trials only *)
  t_write_amp : float option;  (* cells written / keys inserted; dynamic trials only *)
  t_minor_wpq : float;  (* minor words allocated per query (per-domain counters) *)
  t_major_colls : int;  (* major collection slices during the trial, process-wide *)
}

let minor_words_per_query ~(r : Engine.result) snap =
  match
    Metrics.Snapshot.counter_value snap
      Engine.gc_metric_names.Lc_obs.Window.minor_words_counter
  with
  | Some w -> float_of_int w /. float_of_int r.Engine.queries
  | None -> 0.0

let out_of_windowed ~(r : Engine.result) ~cells ~major_colls snap =
  let p50, p99 =
    match Metrics.Snapshot.find_hist snap "engine_query_latency_ns" with
    | Some h -> (Metrics.Snapshot.quantile h 0.5, Metrics.Snapshot.quantile h 0.99)
    | None -> (0.0, 0.0)
  in
  let ratio =
    match cells with
    | None -> 0.0
    | Some cells -> (
      match Lc_obs.Heavy.max_guaranteed cells with
      | None -> 0.0
      | Some e ->
        if r.Engine.flat_bound <= 0.0 then 0.0
        else float_of_int (e.Lc_obs.Heavy.count - e.Lc_obs.Heavy.err) /. r.Engine.flat_bound)
  in
  {
    ns_per_query = r.Engine.seconds *. 1e9 /. float_of_int r.Engine.queries;
    probes_per_query = float_of_int r.Engine.total_probes /. float_of_int r.Engine.queries;
    p50;
    p99;
    ratio;
    t_queries = r.Engine.queries;
    t_probes = r.Engine.total_probes;
    t_ns_per_update = None;
    t_write_amp = None;
    t_minor_wpq = minor_words_per_query ~r snap;
    t_major_colls = major_colls;
  }

let run_trial ~inst ~qd ~domains ~queries_per_domain ~seed =
  let mon = Engine.Monitor.create ~domains inst in
  let cfg = Engine.Config.make ~monitor:mon ~domains ~seed () in
  let colls0 = (Gc.quick_stat ()).Gc.major_collections in
  let o = Engine.run cfg (Engine.Static { inst; qdist = qd; queries_per_domain }) in
  let major_colls = (Gc.quick_stat ()).Gc.major_collections - colls0 in
  let r = o.Engine.result in
  let snap = Lc_obs.Obs.snapshot (Engine.Monitor.obs mon) in
  reconcile ~r snap;
  out_of_windowed ~r ~cells:o.Engine.cells ~major_colls snap

(* One mixed read-write trial: fresh epoch-published dictionary
   preloaded with the combo's keys, a generated op stream whose queries
   draw from the same pool, served by [domains] readers plus the
   builder. The monitor's flat bound is budgeted from the preloaded
   snapshot. *)
let run_dynamic_trial ~universe ~keys ~read_fraction ~domains ~ops_per_domain ~seed =
  let rng = Rng.create seed in
  let epoch = Epoch.create rng ~universe () in
  Array.iter (fun k -> Epoch.insert epoch k) keys;
  Epoch.publish epoch;
  let snap0 = Epoch.current epoch in
  let working_set = min universe (2 * Array.length keys) in
  let ops =
    Opstream.generate
      ~mix:(Opstream.read_write_mix ~read_fraction)
      ~initial_pool:keys rng ~universe ~length:(domains * ops_per_domain) ~working_set
  in
  let mon =
    Engine.Monitor.create_for ~domains ~space:(Epoch.space snap0)
      ~max_probes:(Epoch.max_probes snap0) ()
  in
  let cfg = Engine.Config.make ~monitor:mon ~domains ~seed () in
  let colls0 = (Gc.quick_stat ()).Gc.major_collections in
  let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every = 64 }) in
  let major_colls = (Gc.quick_stat ()).Gc.major_collections - colls0 in
  let r = o.Engine.result in
  let snap = Lc_obs.Obs.snapshot (Engine.Monitor.obs mon) in
  reconcile ~r snap;
  (* Second reconciliation, unique to the dynamic mode: the reader-side
     probe total must equal the structure-side per-cell tallies (live
     levels + retired + drained) — the epoch accounting invariant. *)
  let structure_probes = Epoch.total_probes epoch in
  if structure_probes <> r.Engine.total_probes then
    failwith
      (Printf.sprintf
         "Suite.run: epoch per-cell tallies %d <> reader probes %d — epoch accounting does \
          not reconcile" structure_probes r.Engine.total_probes);
  let base = out_of_windowed ~r ~cells:o.Engine.cells ~major_colls snap in
  match o.Engine.updates with
  | None -> base
  | Some u ->
    let update_ops = u.Engine.inserts + u.Engine.deletes in
    {
      base with
      t_ns_per_update =
        (if update_ops = 0 then None
         else Some (float_of_int u.Engine.builder_ns /. float_of_int update_ops));
      t_write_amp = Some u.Engine.write_amp;
    }

let ci_of ~rng samples =
  let arr = Array.of_list samples in
  let lo, hi = Stats.bootstrap_ci ~rng arr in
  { Artifact.mean = Stats.mean arr; lo; hi; samples }

(* A grid cell: the static (instance x qdist) kind or the mixed
   read-write kind. Static combos come first so the mixed axis extends
   the combo-seed sequence instead of renumbering it. *)
type combo =
  | Static_combo of string * string * int
  | Mixed_combo of string * float * int  (* spec string, read fraction, domains *)

let run ?(progress = fun (_ : string) -> ()) ~seed spec =
  validate_spec spec;
  let universe = universe_for spec.n in
  let boot_rng = Rng.create (seed lxor 0x5eed) in
  let static_combos =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun w -> List.map (fun d -> Static_combo (s, w, d)) spec.domain_counts)
          spec.workloads)
      spec.structures
  in
  let mixed_combos =
    List.concat_map
      (fun w ->
        match Select.rw_fraction w with
        | Some f -> List.map (fun d -> Mixed_combo (w, f, d)) spec.rw_domain_counts
        | None ->
          failwith (Printf.sprintf "Suite.run: rw workload %S is not of the form rw:F" w))
      spec.rw_workloads
  in
  let combos = static_combos @ mixed_combos in
  let entries =
    List.mapi
      (fun i combo ->
        let cseed = combo_seed ~seed i in
        let rng = Rng.create cseed in
        let keys = Lc_workload.Keyset.random rng ~universe ~n:spec.n in
        match combo with
        | Static_combo (structure, workload, domains) ->
          progress
            (Printf.sprintf "%s / %s / %d domains (%d trials)" structure workload domains
               spec.trials);
          let inst = Select.structure rng ~universe ~keys structure in
          let qd = Select.workload rng ~universe ~keys workload in
          let outs =
            List.init spec.trials (fun t ->
                run_trial ~inst ~qd ~domains ~queries_per_domain:spec.queries_per_domain
                  ~seed:(trial_seed ~combo:cseed t))
          in
          let pick f = List.map f outs in
          {
            Artifact.structure;
            workload;
            domains;
            queries_per_domain = spec.queries_per_domain;
            trials = spec.trials;
            ns_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.ns_per_query));
            probes_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.probes_per_query));
            p50_ns = Stats.median (Array.of_list (pick (fun o -> o.p50)));
            p99_ns = Stats.median (Array.of_list (pick (fun o -> o.p99)));
            hotspot_ratio = Stats.median (Array.of_list (pick (fun o -> o.ratio)));
            queries = List.fold_left (fun a o -> a + o.t_queries) 0 outs;
            probes = List.fold_left (fun a o -> a + o.t_probes) 0 outs;
            ns_per_update = None;
            write_amp = None;
            minor_words_per_query =
              Some (Stats.mean (Array.of_list (pick (fun o -> o.t_minor_wpq))));
            major_collections = Some (List.fold_left (fun a o -> a + o.t_major_colls) 0 outs);
          }
        | Mixed_combo (workload, read_fraction, domains) ->
          progress
            (Printf.sprintf "%s / %s / %d domains (%d trials)" Select.dynamic_name workload
               domains spec.trials);
          let outs =
            List.init spec.trials (fun t ->
                run_dynamic_trial ~universe ~keys ~read_fraction ~domains
                  ~ops_per_domain:spec.ops_per_domain
                  ~seed:(trial_seed ~combo:cseed t))
          in
          let pick f = List.map f outs in
          {
            Artifact.structure = Select.dynamic_name;
            workload;
            domains;
            queries_per_domain = spec.ops_per_domain;
            trials = spec.trials;
            ns_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.ns_per_query));
            probes_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.probes_per_query));
            p50_ns = Stats.median (Array.of_list (pick (fun o -> o.p50)));
            p99_ns = Stats.median (Array.of_list (pick (fun o -> o.p99)));
            hotspot_ratio = Stats.median (Array.of_list (pick (fun o -> o.ratio)));
            queries = List.fold_left (fun a o -> a + o.t_queries) 0 outs;
            probes = List.fold_left (fun a o -> a + o.t_probes) 0 outs;
            ns_per_update =
              (match List.filter_map (fun o -> o.t_ns_per_update) outs with
              | [] -> None
              | samples -> Some (ci_of ~rng:boot_rng samples));
            write_amp =
              (match List.filter_map (fun o -> o.t_write_amp) outs with
              | [] -> None
              | samples -> Some (Stats.mean (Array.of_list samples)));
            minor_words_per_query =
              Some (Stats.mean (Array.of_list (pick (fun o -> o.t_minor_wpq))));
            major_collections = Some (List.fold_left (fun a o -> a + o.t_major_colls) 0 outs);
          })
      combos
  in
  { Artifact.fingerprint = Artifact.fingerprint ~seed; entries }
