(* The perf suite: run the serving engine over a grid of
   structure x workload x domain-count configurations and distil each
   into an Artifact entry.

   Reproducibility discipline: one --seed pins everything. Each
   configuration derives a combo seed (keys, structure build, workload
   sampling), each trial a trial seed (engine batches), and the
   bootstrap its own; nothing reads the wall clock except the timings
   being measured and the fingerprint. Every trial runs against a fresh
   Monitor and a fresh Obs handle, and its counters are reconciled
   exactly against the engine's result totals before the trial is
   believed — an artifact whose telemetry disagrees with its ground
   truth must never be written. *)

module Rng = Lc_prim.Rng
module Engine = Lc_parallel.Engine
module Metrics = Lc_obs.Metrics
module Stats = Lc_analysis.Stats

type spec = {
  structures : string list;
  workloads : string list;
  domain_counts : int list;
  queries_per_domain : int;
  trials : int;
  n : int;
}

let default =
  {
    structures = [ "lc"; "fks-norepl"; "binary" ];
    workloads = [ "pos"; "zipf:1.0" ];
    domain_counts = [ 1; 2 ];
    queries_per_domain = 2000;
    trials = 5;
    n = 512;
  }

let quick =
  {
    structures = [ "lc"; "fks-norepl" ];
    workloads = [ "pos" ];
    domain_counts = [ 2 ];
    queries_per_domain = 500;
    trials = 3;
    n = 256;
  }

let validate_spec s =
  if s.structures = [] || s.workloads = [] || s.domain_counts = [] then
    invalid_arg "Suite.run: empty configuration axis";
  if s.trials < 1 then invalid_arg "Suite.run: trials must be >= 1";
  if s.queries_per_domain < 1 then invalid_arg "Suite.run: queries_per_domain must be >= 1";
  if s.n < 1 then invalid_arg "Suite.run: n must be >= 1";
  List.iter (fun d -> if d < 1 then invalid_arg "Suite.run: domains must be >= 1") s.domain_counts

let universe_for n = min (max (16 * n) (n * n)) (1 lsl 28)

(* Distinct odd multipliers keep combo and trial streams disjoint for
   any base seed; exact values are arbitrary but frozen — changing them
   changes every committed artifact. *)
let combo_seed ~seed i = seed + (1009 * (i + 1))
let trial_seed ~combo t = combo + (131 * (t + 1))

let reconcile ~(r : Engine.result) snap =
  let counter name =
    match Metrics.Snapshot.counter_value snap name with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Suite.run: counter %s missing from snapshot" name)
  in
  let q = counter "engine_queries_total" and p = counter "engine_probes_total" in
  if q <> r.queries then
    failwith
      (Printf.sprintf "Suite.run: engine_queries_total %d <> result queries %d — telemetry \
                       does not reconcile" q r.queries);
  if p <> r.total_probes then
    failwith
      (Printf.sprintf "Suite.run: engine_probes_total %d <> result probes %d — telemetry \
                       does not reconcile" p r.total_probes)

type trial_out = {
  ns_per_query : float;
  probes_per_query : float;
  p50 : float;
  p99 : float;
  ratio : float;
  t_queries : int;
  t_probes : int;
}

let run_trial ~inst ~qd ~domains ~queries_per_domain ~seed =
  let mon = Engine.Monitor.create ~domains inst in
  let w = Engine.serve_windowed ~monitor:mon ~domains ~queries_per_domain ~seed inst qd in
  let r = w.Engine.result in
  let snap = Lc_obs.Obs.snapshot (Engine.Monitor.obs mon) in
  reconcile ~r snap;
  let p50, p99 =
    match Metrics.Snapshot.find_hist snap "engine_query_latency_ns" with
    | Some h -> (Metrics.Snapshot.quantile h 0.5, Metrics.Snapshot.quantile h 0.99)
    | None -> (0.0, 0.0)
  in
  let ratio =
    match w.Engine.cells with
    | None -> 0.0
    | Some cells -> (
      match Lc_obs.Heavy.max_guaranteed cells with
      | None -> 0.0
      | Some e -> float_of_int (e.Lc_obs.Heavy.count - e.Lc_obs.Heavy.err) /. r.Engine.flat_bound)
  in
  {
    ns_per_query = r.Engine.seconds *. 1e9 /. float_of_int r.Engine.queries;
    probes_per_query = float_of_int r.Engine.total_probes /. float_of_int r.Engine.queries;
    p50;
    p99;
    ratio;
    t_queries = r.Engine.queries;
    t_probes = r.Engine.total_probes;
  }

let ci_of ~rng samples =
  let arr = Array.of_list samples in
  let lo, hi = Stats.bootstrap_ci ~rng arr in
  { Artifact.mean = Stats.mean arr; lo; hi; samples }

let run ?(progress = fun (_ : string) -> ()) ~seed spec =
  validate_spec spec;
  let universe = universe_for spec.n in
  let boot_rng = Rng.create (seed lxor 0x5eed) in
  let combos =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun w -> List.map (fun d -> (s, w, d)) spec.domain_counts)
          spec.workloads)
      spec.structures
  in
  let entries =
    List.mapi
      (fun i (structure, workload, domains) ->
        progress
          (Printf.sprintf "%s / %s / %d domains (%d trials)" structure workload domains
             spec.trials);
        let cseed = combo_seed ~seed i in
        let rng = Rng.create cseed in
        let keys = Lc_workload.Keyset.random rng ~universe ~n:spec.n in
        let inst = Select.structure rng ~universe ~keys structure in
        let qd = Select.workload rng ~universe ~keys workload in
        let outs =
          List.init spec.trials (fun t ->
              run_trial ~inst ~qd ~domains ~queries_per_domain:spec.queries_per_domain
                ~seed:(trial_seed ~combo:cseed t))
        in
        let pick f = List.map f outs in
        {
          Artifact.structure;
          workload;
          domains;
          queries_per_domain = spec.queries_per_domain;
          trials = spec.trials;
          ns_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.ns_per_query));
          probes_per_query = ci_of ~rng:boot_rng (pick (fun o -> o.probes_per_query));
          p50_ns = Stats.median (Array.of_list (pick (fun o -> o.p50)));
          p99_ns = Stats.median (Array.of_list (pick (fun o -> o.p99)));
          hotspot_ratio = Stats.median (Array.of_list (pick (fun o -> o.ratio)));
          queries = List.fold_left (fun a o -> a + o.t_queries) 0 outs;
          probes = List.fold_left (fun a o -> a + o.t_probes) 0 outs;
        })
      combos
  in
  { Artifact.fingerprint = Artifact.fingerprint ~seed; entries }
