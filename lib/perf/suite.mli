(** The perf suite: a reproducible grid of serving-engine runs distilled
    into one {!Artifact.t}.

    Each [(structure, workload, domains)] configuration is served
    [trials] times, each trial against a fresh monitor and telemetry
    handle; per-trial ns/query and probes/query become bootstrap
    confidence intervals, per-trial latency quantiles and sketch hotspot
    ratios are summarised by their median. Every trial's telemetry
    counters are reconciled {e exactly} against the engine's result
    totals — a mismatch raises rather than writes a lying artifact.

    One [--seed] pins the whole run: combo seeds (keys, builds,
    workloads) and trial seeds (query batches) derive from it by fixed
    arithmetic, so the same seed on the same machine reproduces the same
    probe counts exactly (and timings up to noise). *)

type spec = {
  structures : string list;  (** {!Select.structure} names. *)
  workloads : string list;  (** {!Select.workload} specs. *)
  domain_counts : int list;
  queries_per_domain : int;
  trials : int;
  n : int;  (** Keys per structure; universe is derived as in the CLI. *)
  rw_workloads : string list;
      (** Mixed read-write specs (["rw:F"], {!Select.rw_fraction}),
          served by the epoch-published dynamic dictionary
          ({!Select.dynamic_name} entries). Empty = no mixed axis. *)
  rw_domain_counts : int list;  (** Reader domains for the mixed axis. *)
  ops_per_domain : int;
      (** Op-stream length per reader domain for the mixed axis; the
          entry's [queries_per_domain] field records this number (the
          actual query count depends on the mix draw and is in
          [queries]). *)
}

val default : spec
(** The committed-baseline grid: lc / fks-norepl / binary x pos /
    zipf:1.0 x 1, 2 domains; 5 trials of 2000 queries per domain over
    512 keys — plus the mixed axis lc-dyn x rw:0.90 x 1..4 domains,
    2000 ops per domain. *)

val quick : spec
(** The CI smoke grid: lc / fks-norepl x pos x 2 domains; 3 trials of
    500 queries per domain over 256 keys — plus one mixed lc-dyn /
    rw:0.90 / 2 domains configuration (500 ops per domain), so the
    perf-smoke job covers read-write serving too. *)

val run : ?progress:(string -> unit) -> seed:int -> spec -> Artifact.t
(** Run the grid and return the artifact (not yet written). [progress]
    is called once per configuration with a human-readable label.
    Static combos are enumerated before mixed ones, so adding the mixed
    axis never re-seeds an existing static configuration (their entries
    stay bit-identical under the same seed, which is what keeps
    [lowcon perf diff] silent on them). Mixed trials reconcile twice:
    window telemetry against the engine result, and the epoch
    structure's per-cell tallies (live + retired + drained) against the
    readers' cumulative probe count. Raises [Failure] on any mismatch
    and [Invalid_argument] on a degenerate spec. *)
