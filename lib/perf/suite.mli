(** The perf suite: a reproducible grid of serving-engine runs distilled
    into one {!Artifact.t}.

    Each [(structure, workload, domains)] configuration is served
    [trials] times, each trial against a fresh monitor and telemetry
    handle; per-trial ns/query and probes/query become bootstrap
    confidence intervals, per-trial latency quantiles and sketch hotspot
    ratios are summarised by their median. Every trial's telemetry
    counters are reconciled {e exactly} against the engine's result
    totals — a mismatch raises rather than writes a lying artifact.

    One [--seed] pins the whole run: combo seeds (keys, builds,
    workloads) and trial seeds (query batches) derive from it by fixed
    arithmetic, so the same seed on the same machine reproduces the same
    probe counts exactly (and timings up to noise). *)

type spec = {
  structures : string list;  (** {!Select.structure} names. *)
  workloads : string list;  (** {!Select.workload} specs. *)
  domain_counts : int list;
  queries_per_domain : int;
  trials : int;
  n : int;  (** Keys per structure; universe is derived as in the CLI. *)
}

val default : spec
(** The committed-baseline grid: lc / fks-norepl / binary x pos /
    zipf:1.0 x 1, 2 domains; 5 trials of 2000 queries per domain over
    512 keys. *)

val quick : spec
(** The CI smoke grid: lc / fks-norepl x pos x 2 domains; 3 trials of
    500 queries per domain over 256 keys. *)

val run : ?progress:(string -> unit) -> seed:int -> spec -> Artifact.t
(** Run the grid and return the artifact (not yet written). [progress]
    is called once per configuration with a human-readable label.
    Raises [Failure] on telemetry/result mismatch and
    [Invalid_argument] on a degenerate spec. *)
