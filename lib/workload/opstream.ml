module Rng = Lc_prim.Rng

type op = Insert of int | Delete of int | Query of int

type mix = { p_insert : float; p_delete : float }

let default_mix = { p_insert = 0.4; p_delete = 0.1 }

let read_write_mix ~read_fraction =
  if read_fraction < 0.0 || read_fraction > 1.0 then
    invalid_arg "Opstream.read_write_mix: read_fraction must be in [0, 1]";
  let update = 1.0 -. read_fraction in
  { p_insert = update /. 2.0; p_delete = update /. 2.0 }

let generate ?(mix = default_mix) ?initial_pool rng ~universe ~length ~working_set =
  if mix.p_insert < 0.0 || mix.p_delete < 0.0 || mix.p_insert +. mix.p_delete > 1.0 then
    invalid_arg "Opstream.generate: bad mix";
  if working_set < 1 then invalid_arg "Opstream.generate: working_set must be >= 1";
  if working_set > universe then invalid_arg "Opstream.generate: working set exceeds universe";
  (* The pool of keys the stream talks about; grows lazily up to
     working_set distinct values. [initial_pool] seeds it — the mixed
     serving workloads preload the dictionary and pass the same keys
     here so queries hit from the first operation. *)
  let pool = Array.make working_set (-1) in
  let pool_size = ref 0 in
  (match initial_pool with
  | None -> ()
  | Some seed_keys ->
    if Array.length seed_keys > working_set then
      invalid_arg "Opstream.generate: initial_pool larger than working_set";
    Array.iter
      (fun x ->
        if x < 0 || x >= universe then
          invalid_arg "Opstream.generate: initial_pool key outside universe";
        pool.(!pool_size) <- x;
        incr pool_size)
      seed_keys);
  let fresh_key () =
    if !pool_size < working_set then begin
      let x = Rng.int rng universe in
      pool.(!pool_size) <- x;
      incr pool_size;
      x
    end
    else pool.(Rng.int rng working_set)
  in
  let known_key () = if !pool_size = 0 then fresh_key () else pool.(Rng.int rng !pool_size) in
  Array.init length (fun _ ->
      let u = Rng.float rng in
      if u < mix.p_insert then Insert (fresh_key ())
      else if u < mix.p_insert +. mix.p_delete then Delete (known_key ())
      else Query (known_key ()))

let point_mass ?(mix = default_mix) ?initial_pool rng ~universe ~length ~working_set ~hot_from
    ~hot_share ~hot_key =
  if hot_from < 0 || hot_from > length then
    invalid_arg "Opstream.point_mass: hot_from must be in [0, length]";
  if hot_share < 0.0 || hot_share > 1.0 then
    invalid_arg "Opstream.point_mass: hot_share must be in [0, 1]";
  if hot_key < 0 || hot_key >= universe then
    invalid_arg "Opstream.point_mass: hot_key outside universe";
  (* Generate the base stream first, then rewrite in a second rng pass:
     the prefix before [hot_from] is exactly what [generate] would have
     produced from the same rng state. *)
  let base = generate ~mix ?initial_pool rng ~universe ~length ~working_set in
  Array.mapi
    (fun i op ->
      match op with
      | Query _ when i >= hot_from && Rng.float rng < hot_share -> Query hot_key
      | op -> op)
    base

let shifting_zipf ?(exponent = 1.0) rng ~pool ~length ~shift_every =
  let n = Array.length pool in
  if n = 0 then invalid_arg "Opstream.shifting_zipf: pool must be non-empty";
  if shift_every < 1 then invalid_arg "Opstream.shifting_zipf: shift_every must be >= 1";
  if exponent < 0.0 then invalid_arg "Opstream.shifting_zipf: exponent must be >= 0";
  (* Cumulative harmonic weights over ranks; one binary search per op. *)
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (r + 1) ** exponent));
    cum.(r) <- !total
  done;
  let sample_rank u =
    let target = u *. !total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= target then hi := mid else lo := mid + 1
    done;
    !lo
  in
  Array.init length (fun i ->
      let shift = i / shift_every in
      let r = sample_rank (Rng.float rng) in
      Query pool.((r + shift) mod n))

let counts ops =
  let inserts = ref 0 and deletes = ref 0 and queries = ref 0 in
  Array.iter
    (function
      | Insert _ -> incr inserts
      | Delete _ -> incr deletes
      | Query _ -> incr queries)
    ops;
  (!inserts, !deletes, !queries)

let split ops ~domains =
  if domains < 1 then invalid_arg "Opstream.split: domains must be >= 1";
  let updates = ref [] in
  let queries = Array.make domains [] in
  let q = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Insert _ | Delete _ -> updates := op :: !updates
      | Query x ->
        (* Round-robin so every domain sees the same key locality. *)
        queries.(!q mod domains) <- x :: queries.(!q mod domains);
        incr q)
    ops;
  ( Array.of_list (List.rev !updates),
    Array.map (fun l -> Array.of_list (List.rev l)) queries )

let apply t rng ops =
  let inserts = ref 0 and deletes = ref 0 and hits = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Insert x ->
        Lc_dynamic.Dynamic.insert t x;
        incr inserts
      | Delete x ->
        Lc_dynamic.Dynamic.delete t x;
        incr deletes
      | Query x -> if Lc_dynamic.Dynamic.mem t rng x then incr hits)
    ops;
  (!inserts, !deletes, !hits)

let apply_handle h rng ops =
  let inserts = ref 0 and deletes = ref 0 and hits = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Insert x ->
        Lc_dict.Ops_intf.insert h x;
        incr inserts
      | Delete x ->
        Lc_dict.Ops_intf.delete h x;
        incr deletes
      | Query x -> if Lc_dict.Ops_intf.mem h rng x then incr hits)
    ops;
  (!inserts, !deletes, !hits)

let replay_oracle ops =
  let present = Hashtbl.create 256 in
  Array.map
    (fun op ->
      match op with
      | Insert x ->
        Hashtbl.replace present x ();
        false
      | Delete x ->
        Hashtbl.remove present x;
        false
      | Query x -> Hashtbl.mem present x)
    ops
