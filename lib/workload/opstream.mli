(** Operation streams for dynamic-dictionary workloads.

    The T9/F7 experiments and the dynamic example need realistic
    insert/delete/query mixes; this module generates them with a chosen
    operation mix and key locality, and folds them over any consumer.
    Streams are deterministic given the generator's rng. *)

type op =
  | Insert of int
  | Delete of int
  | Query of int

type mix = {
  p_insert : float;
  p_delete : float;  (** Remaining mass is queries. *)
}

val default_mix : mix
(** 40% inserts, 10% deletes, 50% queries — a read-mostly table with
    churn. *)

val read_write_mix : read_fraction:float -> mix
(** The serving-workload shape: [read_fraction] of the stream is
    queries, the remaining update mass split evenly between inserts and
    deletes (so the live size stays roughly stationary). The perf
    suite's 90/10 configuration is [read_write_mix ~read_fraction:0.9]. *)

val generate :
  ?mix:mix ->
  ?initial_pool:int array ->
  Lc_prim.Rng.t ->
  universe:int ->
  length:int ->
  working_set:int ->
  op array
(** [generate rng ~universe ~length ~working_set] draws [length]
    operations. Keys come from a working set of [working_set] distinct
    values (fresh uniform keys enter the set when an insert needs one);
    deletes and queries target current or recently-seen members, so the
    stream exercises hits, misses and re-insertions.

    [initial_pool] seeds the working set (it must fit in [working_set]
    and lie inside the universe): the mixed serving workloads preload
    the dictionary with these keys, so queries can hit from the very
    first operation instead of warming up from an empty pool. *)

val point_mass :
  ?mix:mix ->
  ?initial_pool:int array ->
  Lc_prim.Rng.t ->
  universe:int ->
  length:int ->
  working_set:int ->
  hot_from:int ->
  hot_share:float ->
  hot_key:int ->
  op array
(** A flash crowd: {!generate}'s stream with a point mass injected at a
    configurable offset. Every query at index [>= hot_from] targets
    [hot_key] with probability [hot_share] (the remainder keep their
    base key), so the stream is flat until the offset and then slams
    one key — the workload the replication controller exists to absorb.

    The base stream is drawn first and rewritten in a second rng pass,
    so the prefix before [hot_from] is {e exactly} what {!generate}
    would have produced from the same rng state; with an
    [initial_pool] that fills [working_set] and excludes [hot_key], the
    hot key appears zero times before the offset. Deterministic given
    the rng seed. *)

val shifting_zipf :
  ?exponent:float -> Lc_prim.Rng.t -> pool:int array -> length:int -> shift_every:int -> op array
(** A query-only stream whose hot set {e moves}: ranks follow a Zipf
    law with [exponent] (default 1.0, higher = more skewed) over the
    key pool, and the rank-to-key mapping rotates by one every
    [shift_every] operations ([pool.((rank + i / shift_every) mod n)]),
    so the hottest key walks through the pool. Exercises a controller's
    cool-down: each shift is a fresh mini-crowd, and a policy without
    hysteresis would thrash. Deterministic given the rng seed. *)

val counts : op array -> int * int * int
(** [(inserts, deletes, queries)] in the stream — the totals a serving
    run reconciles its telemetry against. *)

val split : op array -> domains:int -> op array * int array array
(** [split ops ~domains] partitions a stream for the concurrent engine:
    the update subsequence (inserts and deletes, in stream order — the
    single builder domain applies them as-is) and one query-key array
    per reader domain, dealt round-robin so each domain sees the same
    key locality. Query count over all domains equals the stream's. *)

val apply :
  Lc_dynamic.Dynamic.t -> Lc_prim.Rng.t -> op array -> int * int * int
(** [apply t rng ops] plays the stream against a dynamic dictionary and
    returns [(inserts, deletes, query_hits)] — the consumer used by the
    tests to cross-check against a model set. *)

val apply_handle :
  Lc_dict.Ops_intf.handle -> Lc_prim.Rng.t -> op array -> int * int * int
(** {!apply} generalised to any {!Lc_dict.Ops_intf.S} structure — the
    one consumer that addresses static instances and the dynamic
    dictionary uniformly. Static handles raise on the first update op,
    by design. *)

val replay_oracle : op array -> bool array
(** The reference semantics: the expected result of each [Query] when
    the stream is applied to an initially-empty set (entries for
    non-query operations are [false] and unused). *)
