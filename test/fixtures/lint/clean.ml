(* No findings, even when linted under a hot, shared-scope logical path
   (lib/parallel/clean.ml): pure code with local recursion, no atomics,
   no locks, no mutable state, no banned combinators. *)

let add a b = a + b

let total xs =
  let rec go acc = function [] -> acc | x :: rest -> go (acc + x) rest in
  go 0 xs
