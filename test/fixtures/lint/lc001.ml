(* Planted LC001: a read-modify-write spelled as get + set. Linted under
   the logical path lib/misc/fake.ml (no scoped rule applies there). *)

let bump counter =
  let v = Atomic.get counter in
  Atomic.set counter (v + 1)
