(* Planted LC002: a blocking primitive, linted under the logical path
   lib/parallel/fake.ml (a hot-path module). *)

let acquire m = Mutex.lock m
