(* Planted LC003: a mutable record field and a plain store to it, linted
   under the logical path lib/obs/fake.ml (shared multi-domain scope).
   Two findings, both LC003: the type declaration and the setfield. *)

type t = { mutable count : int }

let bump t = t.count <- t.count + 1
