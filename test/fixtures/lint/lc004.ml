(* Planted LC004: a List combinator inside a function the test's
   manifest declares hot (probe_loop at logical path lib/misc/hot.ml). *)

let probe_loop items f = List.iter f items
