(* Planted LC005: an Obj coercion; the rule is unscoped, any path
   triggers it. *)

let coerce (x : int) : bool = Obj.magic x
