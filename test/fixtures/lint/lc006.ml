(* Planted LC006: builder-owned mutable state with a declared owner and
   a second, unaccounted write path. Linted under the logical path
   lib/dynamic/fake6.ml (shared multi-domain scope) with the baseline
   claim "LC003 lib/dynamic/fake6.ml apply owner=Fake6.serve": [serve]
   is the declared single writer, and [sneak] is the planted path into
   [apply] from outside the owner's call tree. *)

type t = { mutable size : int }

let apply t = t.size <- t.size + 1
let serve t = apply t
let sneak t = apply t
