(* Planted LC007: an epoch-published snapshot read without a pin.
   Linted under the logical path lib/dynamic/fake7.ml with a hot config
   declaring Fake7.snapshot published and Fake7.pin the pin function.
   [good] pins before its plain field read; [bad] reads a snapshot it
   grabbed straight off the Atomic, with no pinning caller. *)

type snapshot = { level : int; epoch : int }

let state : snapshot Atomic.t = Atomic.make { level = 0; epoch = 0 }
let pin () = Atomic.get state

let good () =
  let s = pin () in
  s.level

let bad () =
  let s = Atomic.get state in
  s.epoch
