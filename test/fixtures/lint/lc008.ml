(* Planted LC008: allocation two calls below a manifest root. The
   test's manifest declares [probe] hot (logical path lib/misc/hot8.ml);
   [helper] is clean glue, and [deep] — which LC004's direct audit of
   [probe] never sees — allocates a closure and calls List.map per
   call. The call-graph closure must reach through [helper] and flag
   both sites in [deep]. *)

let deep xs = List.map (fun x -> x + 1) xs
let helper xs = deep xs
let probe xs = helper xs
