(* Tests for the analysis/harness library and the experiment registry. *)

module Stats = Lc_analysis.Stats
module Series = Lc_analysis.Series
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Sigtest = Lc_analysis.Sigtest
module Rng = Lc_prim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf4 = Alcotest.check (Alcotest.float 1e-4)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = checkf "mean" 5.0 (Stats.mean xs)

let test_variance () =
  (* Known: population variance 4, sample variance 32/7. *)
  checkf4 "sample variance" (32.0 /. 7.0) (Stats.variance xs);
  checkf "single point" 0.0 (Stats.variance [| 3.0 |])

let test_stddev () = checkf4 "stddev" (Float.sqrt (32.0 /. 7.0)) (Stats.stddev xs)

let test_min_max () =
  checkf "min" 2.0 (Stats.minimum xs);
  checkf "max" 9.0 (Stats.maximum xs)

let test_quantiles () =
  checkf "median" 4.5 (Stats.median xs);
  checkf "q0" 2.0 (Stats.quantile xs 0.0);
  checkf "q1" 9.0 (Stats.quantile xs 1.0);
  checkf "q interpolates" 2.7 (Stats.quantile [| 1.0; 2.0; 3.0 |] 0.85)

let test_quantile_does_not_mutate () =
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.quantile a 0.5);
  Alcotest.check (Alcotest.array (Alcotest.float 0.0)) "unchanged" [| 3.0; 1.0; 2.0 |] a

let test_geometric_mean () =
  checkf4 "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: non-positive entry") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_describe () =
  let s = Stats.describe xs in
  checkb "mentions mean" true (String.length s > 10)

(* ------------------------------------------------------------------ *)
(* Series                                                               *)
(* ------------------------------------------------------------------ *)

let test_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] and ys = [| 3.0; 5.0; 7.0; 9.0 |] in
  let slope, intercept = Series.linear_fit ~xs ~ys in
  checkf4 "slope" 2.0 slope;
  checkf4 "intercept" 1.0 intercept

let test_loglog_slope_powers () =
  (* y = 5 x^0.5 -> slope 0.5; y = c -> slope 0. *)
  let xs = [| 100.0; 200.0; 400.0; 800.0 |] in
  let ys = Array.map (fun x -> 5.0 *. Float.sqrt x) xs in
  checkf4 "sqrt slope" 0.5 (Series.loglog_slope ~xs ~ys);
  let flat = Array.map (fun _ -> 7.0) xs in
  checkf4 "flat slope" 0.0 (Series.loglog_slope ~xs ~ys:flat)

let test_loglog_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Series.loglog_slope: non-positive value") (fun () ->
      ignore (Series.loglog_slope ~xs:[| 1.0; 2.0 |] ~ys:[| 0.0; 1.0 |]))

let test_doubling_ratios () =
  Alcotest.check
    (Alcotest.array (Alcotest.float 1e-9))
    "ratios" [| 2.0; 1.5 |]
    (Series.doubling_ratios [| 2.0; 4.0; 6.0 |]);
  checki "empty" 0 (Array.length (Series.doubling_ratios [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                             *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Tablefmt.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_row t [ "333"; "4" ];
  let s = Tablefmt.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  checkb "has separator" true (String.contains s '-')

let test_table_row_arity () =
  let t = Tablefmt.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Tablefmt.add_row: 1 cells for 2 columns")
    (fun () -> Tablefmt.add_row t [ "x" ])

let test_table_csv () =
  let t = Tablefmt.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Tablefmt.add_row t [ "1"; "with,comma" ];
  let csv = Tablefmt.to_csv t in
  checkb "quoted comma" true
    (csv = "a,b\n1,\"with,comma\"")

let test_fmt_g () =
  Alcotest.check Alcotest.string "compact" "3.142" (Tablefmt.fmt_g 3.14159);
  Alcotest.check Alcotest.string "large" "1.63e+04" (Tablefmt.fmt_g 16300.0)

(* ------------------------------------------------------------------ *)
(* Chisq                                                                *)
(* ------------------------------------------------------------------ *)

let test_chisq_statistic () =
  (* Hand-computed: O = [10; 20], E = [15; 15] -> 25/15 * 2 = 10/3. *)
  checkf4 "statistic" (10.0 /. 3.0)
    (Lc_analysis.Chisq.statistic ~observed:[| 10; 20 |] ~expected:[| 15.0; 15.0 |]);
  checkf4 "uniform helper" (10.0 /. 3.0) (Lc_analysis.Chisq.statistic_uniform [| 10; 20 |])

let test_gamma_p_known_values () =
  (* P(1, x) = 1 - e^-x; P(1/2, x) = erf(sqrt x). *)
  let open Lc_analysis.Chisq in
  checkf4 "P(1,1)" (1.0 -. Float.exp (-1.0)) (gamma_p ~a:1.0 ~x:1.0);
  checkf4 "P(1,5)" (1.0 -. Float.exp (-5.0)) (gamma_p ~a:1.0 ~x:5.0);
  checkf4 "P(0.5, 0.5) = erf(~0.7071)" 0.682689 (gamma_p ~a:0.5 ~x:0.5);
  checkf4 "P at 0" 0.0 (gamma_p ~a:2.0 ~x:0.0)

let test_p_value_known () =
  (* chi-square with 1 dof: P[X > 3.841] ~ 0.05. *)
  let p = Lc_analysis.Chisq.p_value ~dof:1 3.841 in
  checkb (Printf.sprintf "p ~ 0.05, got %g" p) true (Float.abs (p -. 0.05) < 0.002);
  (* with 10 dof: P[X > 18.31] ~ 0.05. *)
  let p = Lc_analysis.Chisq.p_value ~dof:10 18.31 in
  checkb (Printf.sprintf "p ~ 0.05, got %g" p) true (Float.abs (p -. 0.05) < 0.002)

let test_chisq_uniform_accepts_fair () =
  let rng = Lc_prim.Rng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let i = Lc_prim.Rng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  checkb "fair sample accepted" true (Lc_analysis.Chisq.test_uniform counts)

let test_chisq_uniform_rejects_skew () =
  let counts = Array.make 10 1000 in
  counts.(0) <- 2000;
  checkb "skewed sample rejected" false (Lc_analysis.Chisq.test_uniform counts)

(* ------------------------------------------------------------------ *)
(* Plot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_plot_renders () =
  let open Lc_analysis.Plot in
  let out =
    render ~title:"demo" ~x_label:"n" ~y_label:"c"
      [
        { label = "flat"; points = [| (1.0, 5.0); (2.0, 5.0); (4.0, 5.0) |] };
        { label = "linear"; points = [| (1.0, 1.0); (2.0, 2.0); (4.0, 4.0) |] };
      ]
  in
  checkb "has title" true (String.sub out 0 4 = "demo");
  checkb "has both glyphs" true (String.contains out '*' && String.contains out 'o');
  checkb "has legend" true (String.length out > 200)

let test_plot_log_scale () =
  let open Lc_analysis.Plot in
  let out =
    render ~x_scale:Log ~y_scale:Log ~title:"loglog" ~x_label:"n" ~y_label:"y"
      [ { label = "s"; points = [| (1.0, 1.0); (10.0, 10.0); (100.0, 100.0) |] } ]
  in
  checkb "renders" true (String.length out > 100);
  let raised =
    try
      ignore
        (render ~y_scale:Log ~title:"bad" ~x_label:"x" ~y_label:"y"
           [ { label = "s"; points = [| (1.0, 0.0) |] } ]);
      false
    with Invalid_argument _ -> true
  in
  checkb "rejects non-positive under log" true raised

let test_plot_degenerate_range () =
  let open Lc_analysis.Plot in
  let out =
    render ~title:"dot" ~x_label:"x" ~y_label:"y"
      [ { label = "s"; points = [| (3.0, 3.0) |] } ]
  in
  checkb "single point ok" true (String.contains out '*')

let test_plot_rejects_empty () =
  let open Lc_analysis.Plot in
  let raised =
    try ignore (render ~title:"t" ~x_label:"x" ~y_label:"y" []); false
    with Invalid_argument _ -> true
  in
  checkb "empty rejected" true raised

(* ------------------------------------------------------------------ *)
(* Experiment registry                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  Lc_experiments.Registry.install ();
  let ids = List.map (fun (e : Experiment.t) -> e.id) (Experiment.all ()) in
  List.iter
    (fun id -> checkb (Printf.sprintf "%s registered" id) true (List.mem id ids))
    [
      "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "T7"; "T8"; "T9"; "T10"; "F1"; "F2"; "F3"; "F4";
      "T11"; "T12"; "T13"; "T14"; "T15"; "T16"; "T17"; "T18"; "F5"; "F6"; "F7"; "F8"; "F9";
      "F10"; "F11";
    ];
  checki "exactly 29 experiments" 29 (List.length ids)

let test_registry_lookup_case_insensitive () =
  Lc_experiments.Registry.install ();
  checkb "t1 found" true (Experiment.find "t1" <> None);
  checkb "F3 found" true (Experiment.find "F3" <> None);
  checkb "missing" true (Experiment.find "T99" = None)

let test_registry_order () =
  Lc_experiments.Registry.install ();
  let ids = List.map (fun (e : Experiment.t) -> e.id) (Experiment.all ()) in
  checkb "tables before figures, numeric order" true
    (List.nth ids 0 = "T1" && List.nth ids 17 = "T18" && List.nth ids 18 = "F1")

(* A fast smoke run of two cheap experiments end to end (the full suite
   is exercised by bench/main.exe). *)
let test_run_f3_smoke () =
  Lc_experiments.Registry.install ();
  match Experiment.find "F3" with
  | None -> Alcotest.fail "F3 missing"
  | Some e ->
    let out = e.run ~seed:1 in
    checkb "produces a table" true (String.length out > 100)

let test_run_t8_smoke () =
  Lc_experiments.Registry.install ();
  match Experiment.find "T8" with
  | None -> Alcotest.fail "T8 missing"
  | Some e ->
    let out = e.run ~seed:1 in
    checkb "produces a table" true (String.length out > 100)

let test_experiments_deterministic () =
  Lc_experiments.Registry.install ();
  List.iter
    (fun id ->
      match Experiment.find id with
      | None -> Alcotest.failf "%s missing" id
      | Some e ->
        let a = e.run ~seed:7 and b = e.run ~seed:7 in
        checkb (Printf.sprintf "%s deterministic" id) true (a = b);
        let c = e.run ~seed:8 in
        checkb (Printf.sprintf "%s seed-sensitive or constant" id) true
          (String.length c > 0))
    [ "F3"; "T8" ]

(* ------------------------------------------------------------------ *)
(* Sigtest                                                              *)
(* ------------------------------------------------------------------ *)

let test_mw_exact_disjoint () =
  (* Fully separated tie-free 5 vs 5: U = 0, and the exact two-sided
     null gives p = 2 * C(5,5-choose paths) / C(10,5) = 2/252. *)
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let b = [| 10.0; 11.0; 12.0; 13.0; 14.0 |] in
  let r = Sigtest.mann_whitney_u a b in
  checkb "exact method on tiny tie-free samples" true (r.Sigtest.method_ = Sigtest.Exact);
  checkf "U is minimal" 0.0 r.Sigtest.u;
  checkf "p = 2/252" (2.0 /. 252.0) r.Sigtest.p_two_sided;
  (* Symmetric in the arguments. *)
  let r' = Sigtest.mann_whitney_u b a in
  checkf "symmetric p" r.Sigtest.p_two_sided r'.Sigtest.p_two_sided;
  checkf "mirrored U" 25.0 r'.Sigtest.u

let test_mw_identical_samples () =
  (* Every pooled value equal: zero rank variance, p must be 1. *)
  let c = [| 5.0; 5.0; 5.0; 5.0 |] in
  let r = Sigtest.mann_whitney_u c c in
  checkf "constant samples give p = 1" 1.0 r.Sigtest.p_two_sided;
  (* A distinct sample against itself ties every value pairwise, forcing
     the normal approximation; U sits at its mean so p stays 1. *)
  let d = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let r' = Sigtest.mann_whitney_u d d in
  checkb "ties force the normal approximation" true
    (r'.Sigtest.method_ = Sigtest.Normal_approx);
  Alcotest.check (Alcotest.float 1e-6) "self-test p is 1" 1.0 r'.Sigtest.p_two_sided

let test_mw_interleaved_not_significant () =
  let a = [| 1.0; 3.0; 5.0; 7.0; 9.0 |] in
  let b = [| 2.0; 4.0; 6.0; 8.0; 10.0 |] in
  let r = Sigtest.mann_whitney_u a b in
  checkb "interleaved samples are not significant" true (r.Sigtest.p_two_sided > 0.3)

let test_mw_empty_rejected () =
  checkb "empty sample raises" true
    (try
       ignore (Sigtest.mann_whitney_u [||] [| 1.0 |] : Sigtest.mann_whitney);
       false
     with Invalid_argument _ -> true)

let test_ci_disjoint () =
  checkb "separated intervals are disjoint" true
    (Sigtest.ci_disjoint ~a:(1.0, 2.0) ~b:(3.0, 4.0));
  checkb "order does not matter" true (Sigtest.ci_disjoint ~a:(3.0, 4.0) ~b:(1.0, 2.0));
  checkb "overlapping intervals are not" false
    (Sigtest.ci_disjoint ~a:(1.0, 3.0) ~b:(2.0, 4.0));
  checkb "a shared endpoint counts as overlap" false
    (Sigtest.ci_disjoint ~a:(1.0, 2.0) ~b:(2.0, 3.0));
  checkb "inverted interval raises" true
    (try
       ignore (Sigtest.ci_disjoint ~a:(2.0, 1.0) ~b:(3.0, 4.0) : bool);
       false
     with Invalid_argument _ -> true)

let test_bootstrap_ci () =
  let samples = [| 100.0; 102.0; 98.0; 101.0; 99.0; 103.0; 97.0; 100.5 |] in
  let lo, hi = Stats.bootstrap_ci ~rng:(Rng.create 7) samples in
  let m = Stats.mean samples in
  checkb "interval is ordered" true (lo <= hi);
  checkb "interval contains the sample mean" true (lo <= m && m <= hi);
  checkb "interval is inside the data range" true (lo >= 97.0 && hi <= 103.0);
  (* Deterministic given the rng seed — what makes committed artifacts
     reproducible. *)
  let lo', hi' = Stats.bootstrap_ci ~rng:(Rng.create 7) samples in
  checkf "lo deterministic" lo lo';
  checkf "hi deterministic" hi hi';
  (* A single sample degenerates to a point interval. *)
  let x, y = Stats.bootstrap_ci ~rng:(Rng.create 7) [| 42.0 |] in
  checkf "degenerate lo" 42.0 x;
  checkf "degenerate hi" 42.0 y

(* ------------------------------------------------------------------ *)
(* USL fitting                                                          *)
(* ------------------------------------------------------------------ *)

module Usl = Lc_analysis.Usl

(* Sample a known USL curve and check the fitter recovers the planted
   parameters. The grid is deterministic, so tolerances can be tight:
   one refinement cell at round 5 is well under 0.01 in sigma. *)
let test_usl_recovers_planted () =
  let lambda = 120_000.0 and sigma = 0.18 and kappa = 0.015 in
  let curve n =
    let nf = float_of_int n in
    lambda *. nf /. (1.0 +. (sigma *. (nf -. 1.0)) +. (kappa *. nf *. (nf -. 1.0)))
  in
  let pts = List.map (fun n -> (n, curve n)) [ 1; 2; 3; 4; 6; 8 ] in
  match Usl.fit pts with
  | Error e -> Alcotest.failf "fit rejected a clean synthetic curve: %s" e
  | Ok f ->
    checkb "sigma recovered" true (Float.abs (f.Usl.sigma -. sigma) < 0.01);
    checkb "kappa recovered" true (Float.abs (f.Usl.kappa -. kappa) < 0.005);
    checkb "lambda recovered" true
      (Float.abs (f.Usl.lambda -. lambda) /. lambda < 0.02);
    checkb "r2 near 1" true (f.Usl.r2 > 0.999);
    (* predict must reproduce the fitted curve's own samples. *)
    List.iter
      (fun (n, y) ->
        checkb
          (Printf.sprintf "predict matches at n=%d" n)
          true
          (Float.abs (Usl.predict f n -. y) /. y < 0.02))
      pts;
    (* The planted curve peaks at sqrt((1-sigma)/kappa) ~ 7.39. *)
    (match Usl.peak f with
    | None -> Alcotest.fail "peaked curve reported as monotone"
    | Some p ->
      checkb "peak location recovered" true
        (Float.abs (p -. sqrt ((1.0 -. sigma) /. kappa)) < 0.5))

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_usl_error name pts fragment =
  match Usl.fit pts with
  | Ok f ->
    Alcotest.failf "%s: expected rejection, got sigma=%f kappa=%f" name f.Usl.sigma
      f.Usl.kappa
  | Error e ->
    checkb (Printf.sprintf "%s mentions \"%s\"" name fragment) true
      (contains ~needle:fragment e);
    (* The diagnostic is prose, not a NaN leak. *)
    checkb (Printf.sprintf "%s has no NaN" name) false (contains ~needle:"nan" e)

let test_usl_rejects_degenerate () =
  expect_usl_error "flat curve"
    [ (1, 100.0); (2, 100.0); (3, 100.0); (4, 100.0) ]
    "flat throughput curve";
  expect_usl_error "perfectly linear"
    [ (1, 100.0); (2, 200.0); (3, 300.0); (4, 400.0) ]
    "exactly linear";
  expect_usl_error "too few distinct points"
    [ (1, 100.0); (2, 150.0); (2, 151.0) ]
    "need >= 3 distinct domain counts";
  expect_usl_error "single point" [ (1, 100.0) ] "need >= 3 distinct domain counts";
  expect_usl_error "non-finite throughput"
    [ (1, 100.0); (2, Float.nan); (3, 250.0) ]
    "non-finite throughput";
  expect_usl_error "non-positive throughput"
    [ (1, 100.0); (2, 0.0); (3, 250.0) ]
    "non-positive throughput";
  expect_usl_error "bad domain count" [ (0, 100.0); (2, 150.0); (3, 180.0) ]
    "domain counts must be >= 1"

let test_usl_monotone_has_no_peak () =
  (* kappa = 0: contention only, throughput saturates but never falls,
     so the fitted curve must report no peak. *)
  let lambda = 50_000.0 and sigma = 0.4 in
  let curve n =
    let nf = float_of_int n in
    lambda *. nf /. (1.0 +. (sigma *. (nf -. 1.0)))
  in
  let pts = List.map (fun n -> (n, curve n)) [ 1; 2; 3; 4; 6; 8 ] in
  match Usl.fit pts with
  | Error e -> Alcotest.failf "fit rejected a saturating curve: %s" e
  | Ok f ->
    checkb "sigma recovered" true (Float.abs (f.Usl.sigma -. sigma) < 0.02);
    checkb "kappa near zero" true (f.Usl.kappa < 0.005);
    checkb "no peak for (near-)monotone fit" true
      (match Usl.peak f with None -> true | Some p -> p > 8.0)

(* ------------------------------------------------------------------ *)
(* Cache-line co-heat                                                   *)
(* ------------------------------------------------------------------ *)

module Coheat = Lc_analysis.Coheat

let test_coheat_isolated_cells () =
  (* One hot cell per 8-cell line: no probe shares a line with another
     hot cell, so co-heat is exactly 0 however skewed the heats. *)
  let counts = Array.make 32 0 in
  counts.(0) <- 1000;
  counts.(8) <- 50;
  counts.(16) <- 7;
  let t = Coheat.of_counts counts in
  checki "lines" 4 t.Coheat.lines;
  checki "total" 1057 t.Coheat.total;
  checkf "isolated cells score 0" 0.0 t.Coheat.ratio;
  checki "hottest line" 0 t.Coheat.hottest_line;
  checki "hottest line heat" 1000 t.Coheat.hottest_line_heat;
  checkb "hottest share" true (Float.abs (t.Coheat.hottest_line_share -. (1000.0 /. 1057.0)) < 1e-9)

let test_coheat_uniform_hits_bound () =
  (* Perfectly uniform traffic scores exactly the (L-1)/L bound. *)
  let t = Coheat.of_counts (Array.make 64 5) in
  checkf "uniform ratio = bound" (Coheat.uniform_bound t) t.Coheat.ratio;
  checkf "bound is 7/8" (7.0 /. 8.0) (Coheat.uniform_bound t);
  (* Narrower lines lower the bound: L = 2 gives 1/2. *)
  let t2 = Coheat.of_counts ~line_cells:2 (Array.make 10 3) in
  checkf "L=2 bound" 0.5 (Coheat.uniform_bound t2);
  checkf "L=2 uniform ratio" 0.5 t2.Coheat.ratio

let test_coheat_two_cells_one_line () =
  (* Two equal cells on one line: each probe's line-mates are the other
     cell's probes, ratio = 1/2 by the formula k*(H-k)/H / total. *)
  let counts = Array.make 8 0 in
  counts.(0) <- 100;
  counts.(1) <- 100;
  let t = Coheat.of_counts counts in
  checkf "two equal cells score 1/2" 0.5 t.Coheat.ratio;
  checkb "below the uniform bound" true (t.Coheat.ratio < Coheat.uniform_bound t)

let test_coheat_rejects_bad_input () =
  checkb "negative count raises" true
    (try
       ignore (Coheat.of_counts [| 1; -2; 3 |] : Coheat.t);
       false
     with Invalid_argument _ -> true);
  checkb "line_cells 0 raises" true
    (try
       ignore (Coheat.of_counts ~line_cells:0 [| 1 |] : Coheat.t);
       false
     with Invalid_argument _ -> true);
  (* Empty tallies are a valid (all-zero) diagnostic, not an error. *)
  let t = Coheat.of_counts [||] in
  checki "empty total" 0 t.Coheat.total;
  checkf "empty ratio" 0.0 t.Coheat.ratio

let () =
  Alcotest.run "lc_analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "series",
        [
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "loglog slopes" `Quick test_loglog_slope_powers;
          Alcotest.test_case "rejects nonpositive" `Quick test_loglog_rejects_nonpositive;
          Alcotest.test_case "doubling ratios" `Quick test_doubling_ratios;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row arity" `Quick test_table_row_arity;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "fmt_g" `Quick test_fmt_g;
        ] );
      ( "sigtest",
        [
          Alcotest.test_case "exact disjoint samples" `Quick test_mw_exact_disjoint;
          Alcotest.test_case "identical samples" `Quick test_mw_identical_samples;
          Alcotest.test_case "interleaved not significant" `Quick
            test_mw_interleaved_not_significant;
          Alcotest.test_case "empty rejected" `Quick test_mw_empty_rejected;
          Alcotest.test_case "ci_disjoint" `Quick test_ci_disjoint;
          Alcotest.test_case "bootstrap_ci" `Quick test_bootstrap_ci;
        ] );
      ( "chisq",
        [
          Alcotest.test_case "statistic" `Quick test_chisq_statistic;
          Alcotest.test_case "gamma_p known values" `Quick test_gamma_p_known_values;
          Alcotest.test_case "p-value critical points" `Quick test_p_value_known;
          Alcotest.test_case "accepts fair sample" `Quick test_chisq_uniform_accepts_fair;
          Alcotest.test_case "rejects skew" `Quick test_chisq_uniform_rejects_skew;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders series" `Quick test_plot_renders;
          Alcotest.test_case "log scales" `Quick test_plot_log_scale;
          Alcotest.test_case "degenerate range" `Quick test_plot_degenerate_range;
          Alcotest.test_case "rejects empty" `Quick test_plot_rejects_empty;
        ] );
      ( "usl",
        [
          Alcotest.test_case "recovers planted parameters" `Quick test_usl_recovers_planted;
          Alcotest.test_case "rejects degenerate curves" `Quick test_usl_rejects_degenerate;
          Alcotest.test_case "monotone fit has no peak" `Quick test_usl_monotone_has_no_peak;
        ] );
      ( "coheat",
        [
          Alcotest.test_case "isolated cells score 0" `Quick test_coheat_isolated_cells;
          Alcotest.test_case "uniform hits the bound" `Quick test_coheat_uniform_hits_bound;
          Alcotest.test_case "two cells one line" `Quick test_coheat_two_cells_one_line;
          Alcotest.test_case "rejects bad input" `Quick test_coheat_rejects_bad_input;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "case-insensitive lookup" `Quick test_registry_lookup_case_insensitive;
          Alcotest.test_case "order" `Quick test_registry_order;
          Alcotest.test_case "F3 smoke" `Quick test_run_f3_smoke;
          Alcotest.test_case "T8 smoke" `Quick test_run_t8_smoke;
          Alcotest.test_case "experiments deterministic" `Quick test_experiments_deterministic;
        ] );
    ]
