(* Tests for the cell-probe model: instrumented tables, probe specs,
   query distributions, contention (exact vs Monte-Carlo), concurrency. *)

module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Concurrency = Lc_cellprobe.Concurrency

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let test_table_rw () =
  let t = Table.create ~cells:10 ~bits:8 () in
  Table.write t 3 255;
  checki "read back" 255 (Table.read t ~step:0 3);
  checki "peek" 255 (Table.peek t 3);
  checki "default" 0 (Table.peek t 0)

let test_table_bits_enforced () =
  let t = Table.create ~cells:4 ~bits:4 () in
  Table.write t 0 15;
  Alcotest.check_raises "16 too wide" (Invalid_argument "Table.write: value 16 does not fit 4 bits")
    (fun () -> Table.write t 0 16)

let test_table_sentinel_allowed () =
  let t = Table.create ~init:(-1) ~cells:4 ~bits:4 () in
  checki "sentinel" (-1) (Table.peek t 2);
  Table.write t 2 (-1)

let test_table_counters () =
  let t = Table.create ~cells:8 ~bits:8 () in
  ignore (Table.read t ~step:0 5);
  ignore (Table.read t ~step:0 5);
  ignore (Table.read t ~step:1 5);
  ignore (Table.read t ~step:2 1);
  checki "per-cell total" 3 (Table.probes t 5);
  checki "per-step" 2 (Table.probes_at t ~step:0 5);
  checki "per-step 1" 1 (Table.probes_at t ~step:1 5);
  checki "unprobed" 0 (Table.probes t 0);
  checki "total" 4 (Table.total_probes t);
  checki "max step" 3 (Table.max_step t);
  Table.reset_counters t;
  checki "reset total" 0 (Table.total_probes t);
  checki "reset cell" 0 (Table.probes t 5);
  checki "reset steps" 0 (Table.max_step t)

let test_table_peek_uncounted () =
  let t = Table.create ~cells:4 ~bits:8 () in
  ignore (Table.peek t 0);
  checki "no probes" 0 (Table.total_probes t)

let test_table_corrupt_changes () =
  let t = Table.create ~cells:16 ~bits:8 () in
  for i = 0 to 15 do
    Table.write t i (i * 3)
  done;
  let before = Table.copy_cells t in
  Table.corrupt t (Rng.create 99);
  checkb "one cell changed" true (before <> Table.copy_cells t)

let test_bits_for () =
  checki "0" 1 (Table.bits_for 0);
  checki "1" 1 (Table.bits_for 1);
  checki "2" 2 (Table.bits_for 2);
  checki "255" 8 (Table.bits_for 255);
  checki "256" 9 (Table.bits_for 256)

(* ------------------------------------------------------------------ *)
(* Spec                                                                 *)
(* ------------------------------------------------------------------ *)

let cells_of st = List.of_seq (Spec.step_cells st)

let test_spec_point () =
  Alcotest.check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9))) "point"
    [ (7, 1.0) ] (cells_of (Spec.Point 7));
  checki "support" 1 (Spec.step_support_size (Spec.Point 7))

let test_spec_stride () =
  let st = Spec.Stride { base = 10; stride = 5; count = 3 } in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "stride cells"
    [ (10, 1.0 /. 3.0); (15, 1.0 /. 3.0); (20, 1.0 /. 3.0) ]
    (cells_of st)

let test_spec_probabilities_sum () =
  let steps =
    [
      Spec.Point 0;
      Spec.Uniform [| 1; 2; 3 |];
      Spec.Stride { base = 0; stride = 2; count = 7 };
    ]
  in
  List.iter
    (fun st ->
      let total = Seq.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Spec.step_cells st) in
      checkf "sums to 1" 1.0 total)
    steps

let test_spec_sample_in_support () =
  let rng = Rng.create 3 in
  let st = Spec.Stride { base = 4; stride = 3; count = 5 } in
  let support = List.map fst (cells_of st) in
  for _ = 1 to 200 do
    checkb "sample in support" true (List.mem (Spec.sample_step rng st) support)
  done

let test_spec_sample_uniform () =
  let rng = Rng.create 4 in
  let st = Spec.Uniform [| 0; 1; 2; 3 |] in
  let counts = Array.make 4 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let j = Spec.sample_step rng st in
    counts.(j) <- counts.(j) + 1
  done;
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. 5000.0) /. 5000.0 in
      checkb "within 6%" true (dev < 0.06))
    counts

let test_spec_validate () =
  checkb "good plan" true
    (Spec.validate ~cells:100 [| Spec.Point 0; Spec.Stride { base = 1; stride = 7; count = 14 } |]
    |> Result.is_ok);
  checkb "cell out of range" true
    (Spec.validate ~cells:10 [| Spec.Point 10 |] |> Result.is_error);
  checkb "stride escapes" true
    (Spec.validate ~cells:10 [| Spec.Stride { base = 0; stride = 5; count = 3 } |]
    |> Result.is_error);
  checkb "empty uniform" true (Spec.validate ~cells:10 [| Spec.Uniform [||] |] |> Result.is_error)

let test_spec_max_step_probability () =
  checkf "point" 1.0 (Spec.max_step_probability (Spec.Point 3));
  checkf "stride" 0.25 (Spec.max_step_probability (Spec.Stride { base = 0; stride = 1; count = 4 }))

(* ------------------------------------------------------------------ *)
(* Qdist                                                                *)
(* ------------------------------------------------------------------ *)

let test_qdist_uniform () =
  let d = Qdist.uniform ~name:"u" [| 5; 6; 7; 8 |] in
  let support = Qdist.support d in
  checki "4 atoms" 4 (Array.length support);
  Array.iter (fun (_, p) -> checkf "1/4 each" 0.25 p) support

let test_qdist_merges_duplicates () =
  let d = Qdist.uniform ~name:"u" [| 5; 5; 6 |] in
  let support = Qdist.support d in
  checki "2 atoms" 2 (Array.length support);
  let five = Array.to_list support |> List.assoc 5 in
  checkf "mass merged" (2.0 /. 3.0) five

let test_qdist_point () =
  let d = Qdist.point 42 in
  checki "one atom" 1 (Array.length (Qdist.support d));
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    checki "always 42" 42 (Qdist.sample d rng)
  done

let test_qdist_zipf_ranks () =
  let d = Qdist.zipf ~skew:1.0 [| 100; 200; 300 |] in
  let support = Array.to_list (Qdist.support d) in
  let p1 = List.assoc 100 support and p2 = List.assoc 200 support and p3 = List.assoc 300 support in
  checkb "rank order" true (p1 > p2 && p2 > p3);
  let h = 1.0 +. 0.5 +. (1.0 /. 3.0) in
  checkf "first mass" (1.0 /. h) p1

let test_qdist_zipf_zero_is_uniform () =
  let d = Qdist.zipf ~skew:0.0 [| 1; 2; 3; 4 |] in
  Array.iter (fun (_, p) -> checkf "uniform" 0.25 p) (Qdist.support d)

let test_qdist_sampling_matches_pmf () =
  let d = Qdist.weighted ~name:"w" [| (1, 0.7); (2, 0.2); (3, 0.1) |] in
  let rng = Rng.create 5 in
  let counts = Hashtbl.create 3 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let x = Qdist.sample d rng in
    Hashtbl.replace counts x (1 + try Hashtbl.find counts x with Not_found -> 0)
  done;
  Array.iter
    (fun (x, p) ->
      let freq = float_of_int (Hashtbl.find counts x) /. float_of_int trials in
      checkb (Printf.sprintf "atom %d" x) true (Float.abs (freq -. p) < 0.01))
    (Qdist.support d)

let test_qdist_mixture () =
  let a = Qdist.point 1 and b = Qdist.point 2 in
  let m = Qdist.mixture ~name:"m" [ (3.0, a); (1.0, b) ] in
  let support = Array.to_list (Qdist.support m) in
  checkf "3:1 mix" 0.75 (List.assoc 1 support);
  checkf "3:1 mix other" 0.25 (List.assoc 2 support)

let test_qdist_pos_neg () =
  let d = Qdist.pos_neg ~pos:[| 1; 2 |] ~neg:[| 3; 4; 5; 6 |] ~p_pos:0.5 in
  let support = Array.to_list (Qdist.support d) in
  checkf "positive atom" 0.25 (List.assoc 1 support);
  checkf "negative atom" 0.125 (List.assoc 3 support)

let test_qdist_entropy () =
  checkf "uniform 4" 2.0 (Qdist.entropy (Qdist.uniform ~name:"u" [| 1; 2; 3; 4 |]));
  checkf "point" 0.0 (Qdist.entropy (Qdist.point 9))

let test_qdist_rejects_bad_weights () =
  Alcotest.check_raises "zero weight" (Invalid_argument "Qdist: weights must be positive")
    (fun () -> ignore (Qdist.weighted ~name:"w" [| (1, 0.0) |]))

(* ------------------------------------------------------------------ *)
(* Contention                                                           *)
(* ------------------------------------------------------------------ *)

(* A toy structure with a known contention profile: query x probes cell
   0 always (step 0) then cell x (step 1). *)
let toy_spec x = [| Spec.Point 0; Spec.Point x |]

let test_exact_toy () =
  let d = Qdist.uniform ~name:"u" [| 1; 2; 3; 4 |] in
  let r = Contention.exact ~cells:5 ~qdist:d ~spec:toy_spec in
  checkf "hot cell" 1.0 r.per_cell.(0);
  checkf "data cell" 0.25 r.per_cell.(1);
  checkf "max total" 1.0 r.max_total;
  checkf "mean probes" 2.0 r.mean_probes;
  checkf "step 0 max" 1.0 r.per_step_max.(0);
  checkf "step 1 max" 0.25 r.per_step_max.(1);
  checkf "normalized" 5.0 (Contention.normalized_max r)

let test_exact_stride_aggregation () =
  (* Two queries sharing a full-row stride pattern must pool mass. *)
  let spec _ = [| Spec.Stride { base = 0; stride = 1; count = 10 } |] in
  let d = Qdist.uniform ~name:"u" [| 1; 2 |] in
  let r = Contention.exact ~cells:10 ~qdist:d ~spec in
  Array.iter (fun phi -> checkf "flat 1/10" 0.1 phi) r.per_cell

let test_exact_shorter_plans () =
  (* Query 1 has 2 steps, query 2 has 1: mean probes is the mixture. *)
  let spec x = if x = 1 then [| Spec.Point 0; Spec.Point 1 |] else [| Spec.Point 0 |] in
  let d = Qdist.uniform ~name:"u" [| 1; 2 |] in
  let r = Contention.exact ~cells:2 ~qdist:d ~spec in
  checkf "mean probes" 1.5 r.mean_probes;
  checkf "cell 1" 0.5 r.per_cell.(1)

let test_exact_sums_to_mean_probes () =
  let rng = Rng.create 6 in
  let spec x =
    [|
      Spec.Stride { base = 0; stride = 1; count = 20 };
      Spec.Point (x mod 20);
      Spec.Uniform [| 0; 5; 10 |];
    |]
  in
  let d = Qdist.uniform ~name:"u" (Array.init 10 (fun i -> i + (Rng.int rng 3 * 0))) in
  let r = Contention.exact ~cells:20 ~qdist:d ~spec in
  let total = Array.fold_left ( +. ) 0.0 r.per_cell in
  checkb "sum Phi = mean probes" true (Float.abs (total -. r.mean_probes) < 1e-9)

let test_mc_matches_exact () =
  (* Instrumented toy structure over a real table. *)
  let table = Table.create ~cells:5 ~bits:8 () in
  let mem rng x =
    ignore rng;
    ignore (Table.read table ~step:0 0);
    ignore (Table.read table ~step:1 x);
    true
  in
  let d = Qdist.uniform ~name:"u" [| 1; 2; 3; 4 |] in
  let rng = Rng.create 7 in
  let r = Contention.monte_carlo ~table ~qdist:d ~mem ~rng ~queries:20_000 in
  checkf "hot cell exact" 1.0 r.per_cell.(0);
  checkb "data cell near 1/4" true (Float.abs (r.per_cell.(1) -. 0.25) < 0.02);
  checkb "mean probes" true (Float.abs (r.mean_probes -. 2.0) < 1e-9)

let test_profile_sorted () =
  let d = Qdist.uniform ~name:"u" [| 1; 2 |] in
  let r = Contention.exact ~cells:5 ~qdist:d ~spec:toy_spec in
  let prof = Contention.profile r in
  checki "profile length" 5 (Array.length prof);
  for i = 1 to 4 do
    checkb "descending" true (prof.(i - 1) >= prof.(i))
  done;
  checkf "head is normalized max" (Contention.normalized_max r) prof.(0)

(* ------------------------------------------------------------------ *)
(* Concurrency                                                          *)
(* ------------------------------------------------------------------ *)

let test_concurrency_hot_cell () =
  (* Every query hits cell 0 at step 0 -> hotspot = m, always. *)
  let d = Qdist.uniform ~name:"u" [| 1; 2; 3 |] in
  let rng = Rng.create 8 in
  let stats =
    Concurrency.simulate ~rng ~cells:5 ~qdist:d ~spec:toy_spec ~m:16 ~trials:10
  in
  checkf "hotspot = m" 16.0 stats.mean_hotspot;
  checki "max" 16 stats.max_hotspot

let test_concurrency_spread () =
  (* A perfectly spread single probe: hotspot far below m. *)
  let spec _ = [| Spec.Stride { base = 0; stride = 1; count = 1000 } |] in
  let d = Qdist.uniform ~name:"u" [| 1 |] in
  let rng = Rng.create 9 in
  let stats = Concurrency.simulate ~rng ~cells:1000 ~qdist:d ~spec ~m:64 ~trials:20 in
  checkb "hotspot small" true (stats.mean_hotspot < 6.0);
  checkb "hotspot at least 1" true (stats.mean_hotspot >= 1.0)

let test_concurrency_round_count () =
  let d = Qdist.uniform ~name:"u" [| 1; 2 |] in
  let rng = Rng.create 10 in
  let stats = Concurrency.simulate ~rng ~cells:5 ~qdist:d ~spec:toy_spec ~m:4 ~trials:5 in
  checki "two rounds" 2 (Array.length stats.mean_round_hotspot)

let test_async_degenerates_to_lockstep () =
  (* spread = 1: identical model to lock-step on a deterministic plan. *)
  let d = Qdist.uniform ~name:"u" [| 1; 2; 3 |] in
  let rng = Rng.create 11 in
  let stats =
    Concurrency.simulate_async ~rng ~cells:5 ~qdist:d ~spec:toy_spec ~m:16 ~spread:1 ~trials:10
  in
  checkf "hotspot = m" 16.0 stats.mean_hotspot

let test_async_staggering_thins_hot_cell () =
  (* With a large spread, at most a few of the m queries are probing the
     shared cell in the same slot. *)
  let d = Qdist.uniform ~name:"u" [| 1; 2; 3 |] in
  let rng = Rng.create 12 in
  let stats =
    Concurrency.simulate_async ~rng ~cells:5 ~qdist:d ~spec:toy_spec ~m:64 ~spread:256
      ~trials:10
  in
  checkb
    (Printf.sprintf "hotspot %.1f well below m" stats.mean_hotspot)
    true
    (stats.mean_hotspot < 16.0);
  checkb "still at least 1" true (stats.mean_hotspot >= 1.0)

let test_async_validates () =
  let d = Qdist.uniform ~name:"u" [| 1 |] in
  let rng = Rng.create 13 in
  let raised =
    try
      ignore
        (Concurrency.simulate_async ~rng ~cells:5 ~qdist:d ~spec:toy_spec ~m:4 ~spread:0
           ~trials:1);
      false
    with Invalid_argument _ -> true
  in
  checkb "spread >= 1 enforced" true raised

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

module Trace = Lc_cellprobe.Trace

(* A small instrumented structure for tracing: query x reads cell 0 then
   cell (x mod 4). *)
let traced_table () = Table.create ~cells:5 ~bits:8 ()

let traced_mem table _rng x =
  ignore (Table.read table ~step:0 0);
  ignore (Table.read table ~step:1 (x mod 4));
  true

let test_trace_records_events () =
  let table = traced_table () in
  let rng = Rng.create 1 in
  let tr = Trace.record ~table ~mem:(traced_mem table) ~rng ~queries:[| 1; 2; 3 |] in
  checki "6 events" 6 (Array.length (Trace.events tr));
  checki "3 queries" 3 (Trace.query_count tr);
  let first = Trace.probes_of_query tr 0 in
  checki "2 probes for query 0" 2 (Array.length first);
  checki "first cell" 0 first.(0).Trace.cell;
  checki "second cell" 1 first.(1).Trace.cell

let test_trace_contention_matches_exact () =
  let table = traced_table () in
  let rng = Rng.create 2 in
  let queries = [| 1; 2; 3; 5 |] in
  let tr = Trace.record ~table ~mem:(traced_mem table) ~rng ~queries in
  let c = Trace.contention tr in
  Alcotest.check (Alcotest.float 1e-9) "hot cell" 1.0 c.per_cell.(0);
  Alcotest.check (Alcotest.float 1e-9) "cell 1 (queries 1 and 5)" 0.5 c.per_cell.(1);
  Alcotest.check (Alcotest.float 1e-9) "mean probes" 2.0 c.mean_probes

let test_trace_csv_roundtrip () =
  let table = traced_table () in
  let rng = Rng.create 3 in
  let tr = Trace.record ~table ~mem:(traced_mem table) ~rng ~queries:[| 7; 9 |] in
  let csv = Trace.to_csv tr in
  match Trace.of_csv ~cells:5 csv with
  | Error e -> Alcotest.fail e
  | Ok tr2 ->
    checki "same event count" (Array.length (Trace.events tr)) (Array.length (Trace.events tr2));
    Alcotest.check (Alcotest.array (Alcotest.of_pp (fun fmt (e : Trace.event) ->
        Format.fprintf fmt "(%d,%d,%d)" e.query e.step e.cell)))
      "identical events" (Trace.events tr) (Trace.events tr2)

let test_trace_csv_rejects_garbage () =
  checkb "bad header" true (Result.is_error (Trace.of_csv ~cells:5 "a,b\n1,2"));
  checkb "bad field count" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n1,2"));
  checkb "non-integer" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n1,x,2"));
  checkb "cell out of range" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n0,0,5"));
  checkb "negative cell" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n0,0,-1"));
  checkb "negative query" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n-1,0,2"));
  checkb "negative step" true
    (Result.is_error (Trace.of_csv ~cells:5 "query,step,cell\n0,-3,2"));
  checkb "empty input" true (Result.is_error (Trace.of_csv ~cells:5 ""))

(* of_csv on a printed trace, printed again, is a fixpoint — and the
   degenerate header-only document round-trips to an empty trace. *)
let test_trace_csv_print_parse_fixpoint () =
  let table = traced_table () in
  let rng = Rng.create 5 in
  let tr = Trace.record ~table ~mem:(traced_mem table) ~rng ~queries:[| 0; 1; 2; 3 |] in
  let csv = Trace.to_csv tr in
  (match Trace.of_csv ~cells:5 csv with
  | Error e -> Alcotest.fail e
  | Ok tr2 ->
    Alcotest.check Alcotest.string "to_csv . of_csv . to_csv is the identity" csv
      (Trace.to_csv tr2);
    checki "geometry preserved" (Trace.cells tr) (Trace.cells tr2);
    checki "query count preserved" (Trace.query_count tr) (Trace.query_count tr2));
  match Trace.of_csv ~cells:3 "query,step,cell\n" with
  | Error e -> Alcotest.failf "header-only trace should parse: %s" e
  | Ok empty ->
    checki "no events" 0 (Array.length (Trace.events empty));
    checki "no queries" 0 (Trace.query_count empty);
    checki "cells taken from the argument" 3 (Trace.cells empty)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_exact_total_mass =
  QCheck.Test.make ~name:"sum_j Phi_t(j) = 1 per step (full-length plans)" ~count:100
    QCheck.(int_range 1 20)
    (fun nq ->
      let queries = Array.init nq (fun i -> i) in
      let spec x =
        [| Spec.Point (x mod 7); Spec.Stride { base = 0; stride = 1; count = 7 } |]
      in
      let d = Qdist.uniform ~name:"u" queries in
      let r = Contention.exact ~cells:7 ~qdist:d ~spec in
      let total = Array.fold_left ( +. ) 0.0 r.per_cell in
      Float.abs (total -. 2.0) < 1e-9)

let prop_mc_exact_agree =
  QCheck.Test.make ~name:"Monte-Carlo contention ~= exact on random toy structures" ~count:10
    QCheck.(int_range 2 8)
    (fun nq ->
      let cells = 16 in
      let table = Table.create ~cells ~bits:8 () in
      let spec x =
        [| Spec.Point (x mod cells); Spec.Stride { base = 0; stride = 2; count = 5 } |]
      in
      let mem rng x =
        Array.iteri (fun step st -> ignore (Table.read table ~step (Spec.sample_step rng st))) (spec x);
        true
      in
      let d = Qdist.uniform ~name:"u" (Array.init nq (fun i -> i)) in
      let rng = Rng.create (nq * 131) in
      let ex = Contention.exact ~cells ~qdist:d ~spec in
      let mc = Contention.monte_carlo ~table ~qdist:d ~mem ~rng ~queries:30_000 in
      let ok = ref true in
      for j = 0 to cells - 1 do
        if Float.abs (ex.per_cell.(j) -. mc.per_cell.(j)) > 0.03 then ok := false
      done;
      !ok)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lc_cellprobe"
    [
      ( "table",
        [
          Alcotest.test_case "read/write" `Quick test_table_rw;
          Alcotest.test_case "bits enforced" `Quick test_table_bits_enforced;
          Alcotest.test_case "sentinel allowed" `Quick test_table_sentinel_allowed;
          Alcotest.test_case "counters" `Quick test_table_counters;
          Alcotest.test_case "peek uncounted" `Quick test_table_peek_uncounted;
          Alcotest.test_case "corrupt changes a cell" `Quick test_table_corrupt_changes;
          Alcotest.test_case "bits_for" `Quick test_bits_for;
        ] );
      ( "spec",
        [
          Alcotest.test_case "point" `Quick test_spec_point;
          Alcotest.test_case "stride" `Quick test_spec_stride;
          Alcotest.test_case "probabilities sum" `Quick test_spec_probabilities_sum;
          Alcotest.test_case "sample in support" `Quick test_spec_sample_in_support;
          Alcotest.test_case "sample uniform" `Quick test_spec_sample_uniform;
          Alcotest.test_case "validate" `Quick test_spec_validate;
          Alcotest.test_case "max step probability" `Quick test_spec_max_step_probability;
        ] );
      ( "qdist",
        [
          Alcotest.test_case "uniform" `Quick test_qdist_uniform;
          Alcotest.test_case "merges duplicates" `Quick test_qdist_merges_duplicates;
          Alcotest.test_case "point" `Quick test_qdist_point;
          Alcotest.test_case "zipf ranks" `Quick test_qdist_zipf_ranks;
          Alcotest.test_case "zipf zero uniform" `Quick test_qdist_zipf_zero_is_uniform;
          Alcotest.test_case "sampling matches pmf" `Slow test_qdist_sampling_matches_pmf;
          Alcotest.test_case "mixture" `Quick test_qdist_mixture;
          Alcotest.test_case "pos_neg" `Quick test_qdist_pos_neg;
          Alcotest.test_case "entropy" `Quick test_qdist_entropy;
          Alcotest.test_case "rejects bad weights" `Quick test_qdist_rejects_bad_weights;
        ] );
      ( "contention",
        [
          Alcotest.test_case "exact toy" `Quick test_exact_toy;
          Alcotest.test_case "stride aggregation" `Quick test_exact_stride_aggregation;
          Alcotest.test_case "shorter plans" `Quick test_exact_shorter_plans;
          Alcotest.test_case "mass identity" `Quick test_exact_sums_to_mean_probes;
          Alcotest.test_case "mc matches exact" `Slow test_mc_matches_exact;
          Alcotest.test_case "profile sorted" `Quick test_profile_sorted;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "hot cell" `Quick test_concurrency_hot_cell;
          Alcotest.test_case "spread" `Quick test_concurrency_spread;
          Alcotest.test_case "round count" `Quick test_concurrency_round_count;
          Alcotest.test_case "async spread=1 is lock-step" `Quick
            test_async_degenerates_to_lockstep;
          Alcotest.test_case "async staggering thins hot cell" `Quick
            test_async_staggering_thins_hot_cell;
          Alcotest.test_case "async validates" `Quick test_async_validates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick test_trace_records_events;
          Alcotest.test_case "contention from trace" `Quick test_trace_contention_matches_exact;
          Alcotest.test_case "csv round-trip" `Quick test_trace_csv_roundtrip;
          Alcotest.test_case "csv rejects garbage" `Quick test_trace_csv_rejects_garbage;
          Alcotest.test_case "csv print/parse fixpoint" `Quick
            test_trace_csv_print_parse_fixpoint;
        ] );
      qsuite "properties" [ prop_exact_total_mass; prop_mc_exact_agree ];
    ]
