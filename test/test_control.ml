(* Tests for the replication controller: policy hysteresis (trip
   cadence, cooldown spacing, no oscillation), the controller's
   windowed evidence and actuation, and exact reconciliation between
   the journaled decisions and the /control.json document. *)

module Policy = Lc_control.Policy
module Controller = Lc_control.Controller
module Heavy = Lc_obs.Heavy
module Journal = Lc_obs.Journal
module Json = Lc_obs.Json
module Engine = Lc_parallel.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_policy_validation () =
  let expect_invalid name f =
    checkb name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expect_invalid "boost not a power of two" (fun () -> Policy.create ~boost:3 ());
  expect_invalid "step of one" (fun () ->
      Policy.create ~config:{ Policy.default with step = 1 } ~boost:1 ());
  expect_invalid "inverted ratios" (fun () ->
      Policy.create ~config:{ Policy.default with high_ratio = 1.0; low_ratio = 2.0 } ~boost:1 ());
  expect_invalid "threshold on wrong side" (fun () ->
      Policy.create ~config:{ Policy.default with low_threshold = 5 } ~boost:1 ());
  expect_invalid "min above max" (fun () ->
      Policy.create ~config:{ Policy.default with min_boost = 8; max_boost = 4 } ~boost:8 ())

(* Under constant heat the default policy trips every
   high_threshold/hot_contrib hot windows, cooldown included in the
   cadence because the score keeps accumulating while the cooldown
   absorbs trips. *)
let test_policy_trip_cadence () =
  let p = Policy.create ~boost:1 () in
  let hold = ref 0 in
  let rec drive w =
    match Policy.step p ~ratio:100.0 with
    | Policy.Hold ->
      incr hold;
      if w > 20 then Alcotest.fail "never tripped" else drive (w + 1)
    | Policy.Raise { from_boost; to_boost; score } ->
      checki "windows before first trip" 3 !hold;
      checki "from base" 1 from_boost;
      checki "to base * step" Policy.default.Policy.step to_boost;
      checki "score at threshold" Policy.default.Policy.high_threshold score;
      checki "cooldown armed" Policy.default.Policy.cooldown_windows (Policy.cooldown p)
    | Policy.Lower _ -> Alcotest.fail "lowered under heat"
  in
  drive 0

(* Alternating hot/cold windows must not thrash: the asymmetric
   contributions mean a 50% duty cycle only ever raises, and
   consecutive decisions stay at least cooldown_windows + 1 apart. *)
let test_policy_no_oscillation () =
  let p = Policy.create ~boost:1 () in
  let decisions = ref [] in
  for w = 0 to 399 do
    let ratio = if w mod 2 = 0 then 100.0 else 0.0 in
    match Policy.step p ~ratio with
    | Policy.Hold -> ()
    | Policy.Raise _ as a -> decisions := (w, a) :: !decisions
    | Policy.Lower _ as a -> decisions := (w, a) :: !decisions
  done;
  let ds = List.rev !decisions in
  checkb "tripped at least twice" true (List.length ds >= 2);
  checkb "no lowers on a 50% duty cycle" true
    (List.for_all (function _, Policy.Lower _ -> false | _ -> true) ds);
  let rec spaced = function
    | (w1, _) :: ((w2, _) :: _ as rest) ->
      w2 - w1 > Policy.default.Policy.cooldown_windows && spaced rest
    | _ -> true
  in
  checkb "decisions respect the cooldown" true (spaced ds);
  checkb "boost never exceeds the clamp" true
    (Policy.boost p <= Policy.default.Policy.max_boost)

(* A planted hot cell: synthetic sketch snapshots with one cell whose
   resident count grows every window. The controller must derive the
   windowed tally, trip on schedule, report the planted cell as
   evidence, and fire the actuator with the new target. *)
let test_controller_raise_on_hot_cell () =
  let ctl = Controller.create ~space:1024 ~max_probes:8 ~boost:1 () in
  let fired = ref [] in
  Controller.set_actuator ctl (fun ~id ~boost -> fired := (id, boost) :: !fired);
  let decision = ref None in
  for w = 0 to 3 do
    let top = [ { Heavy.item = 7; count = (w + 1) * 5000; err = 0 } ] in
    match Controller.observe ctl ~window:w ~queries:1000 top with
    | None -> ()
    | Some d -> decision := Some d
  done;
  (match !decision with
  | None -> Alcotest.fail "no decision after four hot windows"
  | Some d ->
    checki "decision id" 1 d.Controller.d_id;
    checki "trip window" 3 d.Controller.d_window;
    checki "planted cell as evidence" 7 d.Controller.d_cell;
    checkb "raise" true (d.Controller.d_action = `Raise);
    checki "old boost" 1 d.Controller.d_old_boost;
    checki "new boost" Policy.default.Policy.step d.Controller.d_new_boost;
    (* flat bound is 1000 * 8 / 1024; the windowed tally is the exact
       resident delta 5000. *)
    checkb "windowed ratio from the resident delta" true
      (abs_float (d.Controller.d_ratio -. (5000.0 /. 7.8125)) < 1e-9));
  checkb "actuator fired once with the target" true
    (!fired = [ (1, Policy.default.Policy.step) ]);
  checki "windows seen" 4 (Controller.windows_seen ctl);
  checki "decisions total" 1 (Controller.decisions_total ctl)

(* Quiet windows decay the boost back to the floor — slowly (the decay
   is a probe, one step per low_threshold/cool_contrib windows) — and
   stop at min_boost. *)
let test_controller_decay_to_baseline () =
  let ctl = Controller.create ~space:1024 ~max_probes:8 ~boost:64 () in
  let lowers = ref [] in
  for w = 0 to 199 do
    match Controller.observe ctl ~window:w ~queries:1000 [] with
    | None -> ()
    | Some d -> lowers := d :: !lowers
  done;
  let ds = List.rev !lowers in
  checkb "all decisions are lowers" true
    (List.for_all (fun d -> d.Controller.d_action = `Lower) ds);
  Alcotest.check (Alcotest.list Alcotest.int) "boost walks down to the floor"
    [ 16; 4; 1 ]
    (List.map (fun d -> d.Controller.d_new_boost) ds);
  checki "rests at min_boost" Policy.default.Policy.min_boost (Controller.target_boost ctl);
  checkb "empty sketch reports no evidence" true
    (List.for_all (fun d -> d.Controller.d_cell = -1) ds)

(* Every decision must appear identically in three places: the
   controller's own log, the flight-recorder journal, and the
   /control.json document the monitor serves. Drive a journaled
   controller attached to a monitor through a raise and a decay, then
   reconcile all three field by field. *)
let test_journal_control_json_reconcile () =
  let domains = 1 in
  let writer = Engine.Monitor.controller_writer ~domains in
  let journal = Journal.create ~writers:(writer + 1) ~capacity:512 in
  let mon =
    Engine.Monitor.create_for ~interval_s:3600.0 ~domains ~space:1024 ~max_probes:8 ()
  in
  let ctl =
    Controller.create ~journal:(journal, writer) ~space:1024 ~max_probes:8 ~boost:1 ()
  in
  Engine.Monitor.attach_controller mon ctl;
  checkb "controller visible on the monitor" true
    (match Engine.Monitor.controller mon with Some c -> c == ctl | None -> false);
  (* Eight hot windows: two raises. Then enough quiet ones for a lower. *)
  let w = ref 0 in
  let feed top =
    ignore (Controller.observe ctl ~window:!w ~queries:1000 top : Controller.decision option);
    incr w
  in
  for i = 1 to 8 do
    feed [ { Heavy.item = 42; count = i * 4000; err = 3 } ]
  done;
  for _ = 1 to 60 do feed [] done;
  let ds = Controller.decisions ctl in
  checki "raises then a lower" 3 (List.length ds);
  (* Journal view. *)
  let journaled =
    List.filter_map
      (fun (e : Journal.event) ->
        match e.Journal.kind with
        | Journal.Control_decision
            { id; window; ratio; cell; count; err; score; action; old_boost; new_boost;
              cooldown } ->
          Some
            ( e.Journal.writer,
              (id, window, ratio, cell, count, err, score, action, old_boost, new_boost,
               cooldown) )
        | _ -> None)
      (Journal.events journal)
  in
  checki "every decision journaled" (List.length ds) (List.length journaled);
  checkb "on the controller's own ring" true
    (List.for_all (fun (rw, _) -> rw = writer) journaled);
  List.iter2
    (fun (d : Controller.decision)
         (_, (id, window, ratio, cell, count, err, score, action, old_boost, new_boost,
              cooldown)) ->
      checki "journal id" d.Controller.d_id id;
      checki "journal window" d.Controller.d_window window;
      checki "journal cell" d.Controller.d_cell cell;
      checki "journal count" d.Controller.d_count count;
      checki "journal err" d.Controller.d_err err;
      checki "journal score" d.Controller.d_score score;
      checkb "journal action" true (d.Controller.d_action = action);
      checki "journal old boost" d.Controller.d_old_boost old_boost;
      checki "journal new boost" d.Controller.d_new_boost new_boost;
      checki "journal cooldown" d.Controller.d_cooldown cooldown;
      checkb "journal ratio" true (abs_float (d.Controller.d_ratio -. ratio) < 1e-9))
    ds journaled;
  (* /control.json view. *)
  let doc =
    match Json.parse (Engine.Monitor.control_json mon) with
    | Ok j -> j
    | Error e -> Alcotest.failf "control.json does not parse: %s" e
  in
  let str k j = Option.get (Json.string_value (Option.get (Json.member k j))) in
  let int k j = Option.get (Json.int_value (Option.get (Json.member k j))) in
  let flt k j = Option.get (Json.float_value (Option.get (Json.member k j))) in
  Alcotest.check Alcotest.string "schema" Engine.Monitor.control_schema_name (str "schema" doc);
  checki "version" Engine.Monitor.control_schema_version (int "version" doc);
  checkb "attached" true
    (Json.member "attached" doc = Some (Json.Bool true));
  checki "decisions_total" (List.length ds) (int "decisions_total" doc);
  let jds = Json.to_list (Option.get (Json.member "decisions" doc)) in
  checki "decision list length" (List.length ds) (List.length jds);
  List.iter2
    (fun (d : Controller.decision) jd ->
      checki "json id" d.Controller.d_id (int "id" jd);
      checki "json window" d.Controller.d_window (int "window" jd);
      checki "json cell" d.Controller.d_cell (int "cell" jd);
      checki "json count" d.Controller.d_count (int "count" jd);
      checki "json err" d.Controller.d_err (int "err" jd);
      checki "json score" d.Controller.d_score (int "score" jd);
      Alcotest.check Alcotest.string "json action"
        (match d.Controller.d_action with `Raise -> "raise" | `Lower -> "lower")
        (str "action" jd);
      checki "json old boost" d.Controller.d_old_boost (int "old_boost" jd);
      checki "json new boost" d.Controller.d_new_boost (int "new_boost" jd);
      checki "json cooldown" d.Controller.d_cooldown (int "cooldown" jd);
      checkb "json ratio" true (abs_float (d.Controller.d_ratio -. flt "ratio" jd) < 1e-9))
    ds jds;
  let boost = Option.get (Json.member "boost" doc) in
  checki "base boost" 1 (int "base" boost);
  checki "target boost" (Controller.target_boost ctl) (int "target" boost)

let () =
  Alcotest.run "lc_control"
    [
      ( "policy",
        [
          Alcotest.test_case "validation" `Quick test_policy_validation;
          Alcotest.test_case "trip cadence" `Quick test_policy_trip_cadence;
          Alcotest.test_case "no oscillation" `Quick test_policy_no_oscillation;
        ] );
      ( "controller",
        [
          Alcotest.test_case "raise on planted hot cell" `Quick
            test_controller_raise_on_hot_cell;
          Alcotest.test_case "decay to baseline" `Quick test_controller_decay_to_baseline;
          Alcotest.test_case "journal and control.json reconcile" `Quick
            test_journal_control_json_reconcile;
        ] );
    ]
