(* Tests for the dynamized low-contention dictionary: semantics against
   a set oracle under random operation sequences, level-shape
   invariants, purge behaviour, replication, and the contention
   characteristics that motivated the extension. *)

module Rng = Lc_prim.Rng
module Dynamic = Lc_dynamic.Dynamic
module Qdist = Lc_cellprobe.Qdist
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let universe = 1 lsl 18

let fresh seed = Dynamic.create (Rng.create seed) ~universe ()

(* ------------------------------------------------------------------ *)
(* Basic semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let t = fresh 1 in
  let rng = Rng.create 2 in
  checki "size" 0 (Dynamic.size t);
  checkb "no member" false (Dynamic.mem t rng 5);
  checki "no cells" 0 (Dynamic.space t)

let test_insert_mem () =
  let t = fresh 3 in
  let rng = Rng.create 4 in
  Dynamic.insert t 10;
  Dynamic.insert t 20;
  Dynamic.insert t 30;
  checki "size" 3 (Dynamic.size t);
  checkb "10" true (Dynamic.mem t rng 10);
  checkb "20" true (Dynamic.mem t rng 20);
  checkb "30" true (Dynamic.mem t rng 30);
  checkb "40" false (Dynamic.mem t rng 40)

let test_insert_idempotent () =
  let t = fresh 5 in
  Dynamic.insert t 7;
  Dynamic.insert t 7;
  Dynamic.insert t 7;
  checki "size 1" 1 (Dynamic.size t)

let test_delete () =
  let t = fresh 6 in
  let rng = Rng.create 7 in
  List.iter (Dynamic.insert t) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Dynamic.delete t 3;
  checki "size" 7 (Dynamic.size t);
  checkb "3 gone" false (Dynamic.mem t rng 3);
  checkb "4 stays" true (Dynamic.mem t rng 4);
  Dynamic.delete t 3;
  checki "delete idempotent" 7 (Dynamic.size t);
  Dynamic.delete t 99;
  checki "delete absent is no-op" 7 (Dynamic.size t)

let test_reinsert_after_delete () =
  let t = fresh 8 in
  let rng = Rng.create 9 in
  List.iter (Dynamic.insert t) [ 1; 2; 3; 4 ];
  Dynamic.delete t 2;
  checkb "2 gone" false (Dynamic.mem t rng 2);
  Dynamic.insert t 2;
  checkb "2 back (un-deleted)" true (Dynamic.mem t rng 2);
  checki "size back" 4 (Dynamic.size t)

let test_levels_shape () =
  let t = fresh 10 in
  (* 13 keys = 0b1101 -> levels 0, 2, 3 occupied. *)
  for x = 1 to 13 do
    Dynamic.insert t (x * 11)
  done;
  let shape = List.map (fun (i, k, _) -> (i, k)) (Dynamic.level_sizes t) in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "binary shape" [ (0, 1); (2, 4); (3, 8) ] shape

let test_purge_triggers () =
  let t = fresh 11 in
  for x = 1 to 32 do
    Dynamic.insert t x
  done;
  for x = 1 to 17 do
    Dynamic.delete t x
  done;
  checkb "purged at half dead" true (Dynamic.purges t >= 1);
  checki "live" 15 (Dynamic.size t);
  let rng = Rng.create 12 in
  for x = 18 to 32 do
    checkb "survivor" true (Dynamic.mem t rng x)
  done;
  for x = 1 to 17 do
    checkb "purged key absent" false (Dynamic.mem t rng x)
  done

let test_check_invariants () =
  let t = fresh 13 in
  let rng = Rng.create 14 in
  for x = 1 to 100 do
    Dynamic.insert t (x * 7)
  done;
  for x = 1 to 20 do
    Dynamic.delete t (x * 7)
  done;
  match Dynamic.check t rng with Ok () -> () | Error e -> Alcotest.fail e

let test_amortized_rebuild_cost () =
  (* keys_rebuilt / inserts should be O(log n): for 512 inserts each key
     moves through at most 10 levels. *)
  let t = fresh 15 in
  let n = 512 in
  for x = 1 to n do
    Dynamic.insert t x
  done;
  let per_insert = float_of_int (Dynamic.keys_rebuilt t) /. float_of_int n in
  checkb
    (Printf.sprintf "amortized %.1f <= 10" per_insert)
    true (per_insert <= 10.0)

let test_space_linear () =
  let t = fresh 16 in
  for x = 1 to 1000 do
    Dynamic.insert t x
  done;
  checkb "space O(n log n) at worst" true (Dynamic.space t <= 1000 * 64)

(* ------------------------------------------------------------------ *)
(* Replication (small_level_boost)                                      *)
(* ------------------------------------------------------------------ *)

let test_boost_replica_counts () =
  let t = Dynamic.create ~small_level_boost:16 (Rng.create 17) ~universe () in
  for x = 1 to 13 do
    Dynamic.insert t x
  done;
  List.iter
    (fun (i, _, reps) -> checki (Printf.sprintf "level %d replicas" i) (max 1 (16 lsr i)) reps)
    (Dynamic.level_sizes t)

let test_boost_rejects_non_power () =
  let raised =
    try
      ignore (Dynamic.create ~small_level_boost:3 (Rng.create 1) ~universe ());
      false
    with Invalid_argument _ -> true
  in
  checkb "power of two enforced" true raised

let test_boost_preserves_semantics () =
  let t = Dynamic.create ~small_level_boost:8 (Rng.create 18) ~universe () in
  let rng = Rng.create 19 in
  for x = 1 to 50 do
    Dynamic.insert t (x * 3)
  done;
  for x = 1 to 50 do
    checkb "present" true (Dynamic.mem t rng (x * 3))
  done;
  checkb "absent" false (Dynamic.mem t rng 1);
  match Dynamic.check t rng with Ok () -> () | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Contention: the small-level hot spot and its mitigation              *)
(* ------------------------------------------------------------------ *)

(* Negative (miss) queries reach every level, so the singleton level's
   two-cell rows absorb the whole query mass: dynamization turns misses
   into a hot spot. Positive queries stop at their hit level (largest
   first), which hides the effect — the tests pin down both. *)
let neg_queries keys =
  let in_keys = Hashtbl.create 256 in
  Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
  let rec gather acc x n =
    if n = 0 then acc
    else if Hashtbl.mem in_keys x then gather acc (x + 1) n
    else gather (x :: acc) (x + 1) (n - 1)
  in
  Array.of_list (gather [] 0 256)

let test_small_level_hotspot () =
  let t = fresh 20 in
  let keys = Array.init 129 (fun i -> (i * 17) + 1) in
  Array.iter (Dynamic.insert t) keys;
  let qd = Qdist.uniform ~name:"neg" (neg_queries keys) in
  let c = Dynamic.contention_exact t qd in
  let small_level = List.assoc 0 c.per_level in
  let big_level = List.assoc 7 c.per_level in
  checkb
    (Printf.sprintf "small level %.0f dominates big level %.0f" small_level big_level)
    true
    (small_level > 4.0 *. big_level);
  checki "worst is the singleton level" 0 c.worst_level

let test_positive_queries_hide_the_hotspot () =
  (* Largest-first search: a key stored in the big level never probes
     the singleton level, so uniform-positive contention stays tame. *)
  let t = fresh 25 in
  let keys = Array.init 129 (fun i -> (i * 17) + 1) in
  Array.iter (Dynamic.insert t) keys;
  let qd = Qdist.uniform ~name:"pos" keys in
  let c = Dynamic.contention_exact t qd in
  checkb (Printf.sprintf "worst %.0f stays < 100" c.worst) true (c.worst < 100.0)

let test_boost_levels_the_hotspot () =
  let keys = Array.init 129 (fun i -> (i * 17) + 1) in
  let qd = Qdist.uniform ~name:"neg" (neg_queries keys) in
  let build boost =
    let t = Dynamic.create ~small_level_boost:boost (Rng.create 21) ~universe () in
    Array.iter (Dynamic.insert t) keys;
    (Dynamic.contention_exact t qd).worst
  in
  let plain = build 1 and boosted = build 32 in
  checkb
    (Printf.sprintf "boost 32 cuts worst contention: %.0f -> %.0f" plain boosted)
    true
    (boosted < plain /. 4.0)

(* ------------------------------------------------------------------ *)
(* Oracle property                                                      *)
(* ------------------------------------------------------------------ *)

let test_boost_survives_churn () =
  (* Replicated levels must stay consistent through cascades, deletes
     and purges — the invariant checker covers replica counts too. *)
  let t = Dynamic.create ~small_level_boost:16 (Rng.create 30) ~universe () in
  let rng = Rng.create 31 in
  let ops =
    Lc_workload.Opstream.generate (Rng.create 32) ~universe ~length:3_000 ~working_set:300
  in
  let _ = Lc_workload.Opstream.apply t rng ops in
  (match Dynamic.check t rng with Ok () -> () | Error e -> Alcotest.fail e);
  List.iter
    (fun (i, _, reps) -> checki (Printf.sprintf "level %d replicas" i) (max 1 (16 lsr i)) reps)
    (Dynamic.level_sizes t)

let prop_matches_set_oracle =
  QCheck.Test.make ~name:"random op sequence matches a set oracle" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 300) (pair bool (int_range 0 200)))
    (fun ops ->
      let t = fresh 22 in
      let rng = Rng.create 23 in
      let oracle = Hashtbl.create 64 in
      List.iter
        (fun (is_insert, x) ->
          if is_insert then begin
            Dynamic.insert t x;
            Hashtbl.replace oracle x ()
          end
          else begin
            Dynamic.delete t x;
            Hashtbl.remove oracle x
          end)
        ops;
      let ok = ref (Dynamic.size t = Hashtbl.length oracle) in
      for x = 0 to 200 do
        if Dynamic.mem t rng x <> Hashtbl.mem oracle x then ok := false
      done;
      !ok && Result.is_ok (Dynamic.check t rng))

let prop_insert_only_oracle =
  QCheck.Test.make ~name:"insert-only sequences" ~count:20
    QCheck.(int_range 1 400)
    (fun n ->
      let t = fresh (n + 100) in
      let rng = Rng.create 24 in
      let keys = Keyset.random rng ~universe ~n in
      Array.iter (Dynamic.insert t) keys;
      Dynamic.size t = n
      && Array.for_all (fun x -> Dynamic.mem t rng x) keys
      && Result.is_ok (Dynamic.check t rng))

(* ------------------------------------------------------------------ *)
(* Epoch publication                                                    *)
(* ------------------------------------------------------------------ *)

module Epoch = Lc_dynamic.Epoch

let test_epoch_publish_visibility () =
  let t = Epoch.create (Rng.create 50) ~universe () in
  let r = Epoch.reader t (Rng.create 51) in
  Epoch.insert t 7;
  Epoch.insert t 11;
  checkb "insert invisible before publish" false (Epoch.mem t r 7);
  Epoch.publish t;
  checkb "visible after publish" true (Epoch.mem t r 7);
  checkb "visible after publish" true (Epoch.mem t r 11);
  checkb "absent key" false (Epoch.mem t r 12);
  Epoch.delete t 7;
  checkb "delete invisible before publish" true (Epoch.mem t r 7);
  Epoch.publish t;
  checkb "tombstone visible after publish" false (Epoch.mem t r 7);
  checki "epoch advanced per publish" 2 (Epoch.epoch (Epoch.current t))

let test_epoch_reclamation_and_accounting () =
  let t = Epoch.create (Rng.create 52) ~universe () in
  let r = Epoch.reader t (Rng.create 53) in
  (* Churn with periodic publication: cascading rebuilds drop levels
     constantly; with the only reader quiescent between queries, every
     retired level frees on the builder's next try_reclaim. *)
  for x = 0 to 499 do
    Epoch.insert t x;
    if (x + 1) mod 32 = 0 then begin
      Epoch.publish t;
      ignore (Epoch.try_reclaim t)
    end;
    if x mod 16 = 0 then ignore (Epoch.mem t r x)
  done;
  Epoch.publish t;
  ignore (Epoch.try_reclaim t);
  checkb "levels were reclaimed" true (Epoch.reclaimed t > 0);
  checki "nothing left pending" 0 (Epoch.retired_pending t);
  checki "per-cell tallies reconcile with the reader" (Epoch.reader_probes r)
    (Epoch.total_probes t);
  checkb "all inserts live" true
    (let ok = ref true in
     for x = 0 to 499 do
       if not (Epoch.mem t r x) then ok := false
     done;
     !ok)

(* Reclamation-lag accounting under a parked reader: a pin held across
   publications must make retired_pending and the staleness gauges
   grow (the builder cannot free what the reader may still see), and
   releasing the pin must let one try_reclaim drain everything —
   with the observed worst lag recorded in reclaim_lag_max. *)
let test_epoch_pinned_reader_lag_accounting () =
  let t = Epoch.create (Rng.create 54) ~universe () in
  let r = Epoch.reader t (Rng.create 55) in
  for x = 0 to 63 do
    Epoch.insert t x
  done;
  Epoch.publish t;
  ignore (Epoch.mem t r 0);
  (* Park the reader on the current snapshot... *)
  Epoch.acquire t r;
  checki "no lag while pinned at the head" 0 (Epoch.reader_lag t);
  (* ...then churn: cascading rebuilds retire levels every publish. *)
  for x = 64 to 319 do
    Epoch.insert t x;
    if (x + 1) mod 32 = 0 then begin
      Epoch.publish t;
      ignore (Epoch.try_reclaim t)
    end
  done;
  checkb "retired levels pile up behind the pin" true (Epoch.retired_pending t > 0);
  checkb "reader staleness counts the missed publications" true
    (Epoch.reader_staleness t r > 0);
  checki "reader_lag sees the parked reader" (Epoch.reader_staleness t r)
    (Epoch.reader_lag t);
  checkb "oldest retired level has measurable age" true (Epoch.oldest_retired_age t > 0);
  let reclaimed_while_pinned = Epoch.reclaimed t in
  (* Unpin: the backlog drains in one sweep. *)
  Epoch.release r;
  ignore (Epoch.try_reclaim t);
  checki "nothing pending after release + reclaim" 0 (Epoch.retired_pending t);
  checkb "the drain freed the backlog" true (Epoch.reclaimed t > reclaimed_while_pinned);
  checki "no lag at quiescence" 0 (Epoch.reader_lag t);
  checkb "worst lag was recorded" true (Epoch.reclaim_lag_max t > 0);
  (* The pin never compromised safety or accounting. *)
  ignore (Epoch.mem t r 0);
  checki "tallies still reconcile" (Epoch.reader_probes r) (Epoch.total_probes t)

(* The linchpin property: under a hard-driven concurrent builder and
   several readers, (a) no query ever touches a freed level (the poison
   flag never trips), (b) every answer agrees with the sequential
   oracle of the epoch the query pinned, and (c) at quiescence the
   per-cell tallies reconcile exactly with the readers' own counts. *)
let prop_epoch_concurrent_oracle =
  QCheck.Test.make ~name:"concurrent readers agree with the pinned epoch's oracle" ~count:8
    QCheck.(pair (list_of_size (Gen.int_range 100 400) (pair bool (int_range 0 199)))
              (int_range 8 48))
    (fun (raw_ops, publish_every) ->
      let uni = 4096 in
      let ops = Array.of_list raw_ops in
      let len = Array.length ops in
      let publications = (len + publish_every - 1) / publish_every in
      (* Oracle per epoch: epoch e publishes the prefix of e*publish_every
         operations (the last one whatever remains). *)
      let expected =
        let model = Hashtbl.create 64 in
        let tbl = Array.make (publications + 1) [||] in
        tbl.(0) <- Array.make 200 false;
        let upto = ref 0 in
        for e = 1 to publications do
          let stop = min (e * publish_every) len in
          while !upto < stop do
            let ins, x = ops.(!upto) in
            if ins then Hashtbl.replace model x () else Hashtbl.remove model x;
            incr upto
          done;
          tbl.(e) <- Array.init 200 (Hashtbl.mem model)
        done;
        tbl
      in
      let t = Epoch.create (Rng.create 54) ~universe:uni () in
      let n_readers = 3 in
      let readers =
        Array.init n_readers (fun i -> Epoch.reader t (Rng.create (55 + i)))
      in
      let done_flag = Atomic.make false in
      let builder =
        Domain.spawn (fun () ->
            Array.iteri
              (fun i (ins, x) ->
                if ins then Epoch.insert t x else Epoch.delete t x;
                if (i + 1) mod publish_every = 0 || i + 1 = len then begin
                  Epoch.publish t;
                  ignore (Epoch.try_reclaim t)
                end)
              ops;
            Atomic.set done_flag true)
      in
      let reader_domains =
        Array.map
          (fun r ->
            Domain.spawn (fun () ->
                let rng = Rng.create (Epoch.reader_probes r + 97) in
                let mismatches = ref 0 and freed = ref 0 and queries = ref 0 in
                let budget = ref 200_000 in
                while (not (Atomic.get done_flag)) && !budget > 0 do
                  decr budget;
                  incr queries;
                  let x = Rng.int rng 200 in
                  (try
                     let got = Epoch.mem t r x in
                     let e = Epoch.last_epoch r in
                     if got <> expected.(e).(x) then incr mismatches
                   with Epoch.Freed_level _ -> incr freed)
                done;
                (* A few queries after the builder is done must see the
                   final epoch's contents. *)
                for _ = 1 to 50 do
                  let x = Rng.int rng 200 in
                  try
                    let got = Epoch.mem t r x in
                    let e = Epoch.last_epoch r in
                    if got <> expected.(e).(x) then incr mismatches
                  with Epoch.Freed_level _ -> incr freed
                done;
                (!mismatches, !freed, !queries)))
          readers
      in
      Domain.join builder;
      let results = Array.map Domain.join reader_domains in
      let mismatches = Array.fold_left (fun a (m, _, _) -> a + m) 0 results in
      let freed_hits = Array.fold_left (fun a (_, f, _) -> a + f) 0 results in
      (* All readers quiescent now: everything retired must free, and
         the structure-side tallies must equal the readers' counters. *)
      ignore (Epoch.try_reclaim t);
      let reader_probes =
        Array.fold_left (fun a r -> a + Epoch.reader_probes r) 0 readers
      in
      mismatches = 0 && freed_hits = 0
      && Epoch.retired_pending t = 0
      && Epoch.total_probes t = reader_probes
      && Epoch.epoch (Epoch.current t) = publications)

let () =
  Alcotest.run "lc_dynamic"
    [
      ( "semantics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/mem" `Quick test_insert_mem;
          Alcotest.test_case "insert idempotent" `Quick test_insert_idempotent;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "reinsert after delete" `Quick test_reinsert_after_delete;
          Alcotest.test_case "level shape" `Quick test_levels_shape;
          Alcotest.test_case "purge triggers" `Quick test_purge_triggers;
          Alcotest.test_case "check invariants" `Quick test_check_invariants;
          Alcotest.test_case "amortized rebuild cost" `Quick test_amortized_rebuild_cost;
          Alcotest.test_case "space linear" `Quick test_space_linear;
        ] );
      ( "replication",
        [
          Alcotest.test_case "replica counts" `Quick test_boost_replica_counts;
          Alcotest.test_case "rejects non-power boost" `Quick test_boost_rejects_non_power;
          Alcotest.test_case "semantics preserved" `Quick test_boost_preserves_semantics;
          Alcotest.test_case "boost survives churn" `Quick test_boost_survives_churn;
        ] );
      ( "contention",
        [
          Alcotest.test_case "small-level hot spot (misses)" `Quick test_small_level_hotspot;
          Alcotest.test_case "positives hide the hot spot" `Quick
            test_positive_queries_hide_the_hotspot;
          Alcotest.test_case "boost levels the hot spot" `Quick test_boost_levels_the_hotspot;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "publish visibility" `Quick test_epoch_publish_visibility;
          Alcotest.test_case "reclamation + accounting" `Quick
            test_epoch_reclamation_and_accounting;
          Alcotest.test_case "pinned reader lag accounting" `Quick
            test_epoch_pinned_reader_lag_accounting;
        ] );
      ( "oracle",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_matches_set_oracle; prop_insert_only_oracle; prop_epoch_concurrent_oracle ] );
    ]
