(* Tier-1 tests for lc_lint: each planted fixture triggers exactly its
   rule, the clean fixture triggers nothing, baselines suppress / expire
   / report unused entries, the lowcon-lint JSON report round-trips
   through its own decoder, and exit codes follow the 0/1/2 contract. *)

module Rule = Lc_lint.Rule
module Finding = Lc_lint.Finding
module Baseline = Lc_lint.Baseline
module Hotpath = Lc_lint.Hotpath
module Driver = Lc_lint.Driver
module Report = Lc_lint.Report
module Json = Lc_obs.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let read_fixture name =
  let ic = open_in_bin (Filename.concat "fixtures/lint" name) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture ?hot ~path name =
  match Driver.lint_source ?hot ~path (read_fixture name) with
  | Ok findings -> findings
  | Error pe -> Alcotest.failf "fixture %s failed to parse: %s" name pe.Report.pe_message

let rule_ids findings =
  List.map (fun f -> Rule.id f.Finding.rule) findings

(* ------------------------------------------------------------------ *)
(* Fixtures: one rule each                                             *)
(* ------------------------------------------------------------------ *)

let test_fixture_lc001 () =
  let fs = lint_fixture ~path:"lib/misc/fake.ml" "lc001.ml" in
  Alcotest.(check (list string)) "exactly one LC001" [ "LC001" ] (rule_ids fs);
  checks "context is the binding" "bump" (List.hd fs).Finding.context

let test_fixture_lc002 () =
  let fs = lint_fixture ~path:"lib/parallel/fake.ml" "lc002.ml" in
  Alcotest.(check (list string)) "exactly one LC002" [ "LC002" ] (rule_ids fs);
  (* The same file under a cold path is silent: the rule is scoped. *)
  checki "cold path silent" 0
    (List.length (lint_fixture ~path:"lib/analysis/fake.ml" "lc002.ml"))

let test_fixture_lc003 () =
  let fs = lint_fixture ~path:"lib/obs/fake.ml" "lc003.ml" in
  Alcotest.(check (list string))
    "type decl + setfield, both LC003" [ "LC003"; "LC003" ] (rule_ids fs);
  checki "cold scope silent" 0
    (List.length (lint_fixture ~path:"lib/dict/fake.ml" "lc003.ml"))

let test_fixture_lc004 () =
  let hot =
    {
      Hotpath.default with
      Hotpath.hot_functions =
        (fun p -> if p = "lib/misc/hot.ml" then [ "probe_loop" ] else []);
    }
  in
  let fs = lint_fixture ~hot ~path:"lib/misc/hot.ml" "lc004.ml" in
  Alcotest.(check (list string)) "exactly one LC004" [ "LC004" ] (rule_ids fs);
  checki "off-manifest silent" 0
    (List.length (lint_fixture ~hot ~path:"lib/misc/cold.ml" "lc004.ml"))

let test_fixture_lc005 () =
  let fs = lint_fixture ~path:"lib/misc/unsafe.ml" "lc005.ml" in
  Alcotest.(check (list string)) "exactly one LC005" [ "LC005" ] (rule_ids fs)

let test_fixture_clean () =
  checki "clean fixture, hot shared path" 0
    (List.length (lint_fixture ~path:"lib/parallel/clean.ml" "clean.ml"))

let test_rules_filter () =
  (* lc003.ml under shared scope fires LC003 only when LC003 is run. *)
  let content = read_fixture "lc003.ml" in
  let lint rules =
    match Driver.lint_source ~rules ~path:"lib/obs/fake.ml" content with
    | Ok fs -> List.length fs
    | Error _ -> Alcotest.fail "parse failed"
  in
  checki "LC003 subset fires" 2 (lint [ Rule.LC003 ]);
  checki "disjoint subset silent" 0 (lint [ Rule.LC001; Rule.LC005 ])

let test_parse_failure () =
  match Driver.lint_source ~path:"lib/misc/broken.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error pe -> checks "error carries the logical path" "lib/misc/broken.ml" pe.Report.pe_file

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let jan1 = { Baseline.y = 2026; m = 1; d = 1 }

let baseline_of lines =
  match Baseline.parse ~path:"test-baseline" (String.concat "\n" lines) with
  | Ok b -> b
  | Error e -> Alcotest.failf "baseline parse failed: %s" e

let fake_finding =
  {
    Finding.rule = Rule.LC001;
    file = "lib/misc/fake.ml";
    line = 5;
    col = 2;
    context = "bump";
    message = "planted";
  }

let test_baseline_suppresses () =
  let b =
    baseline_of
      [ "# comment"; ""; "LC001 lib/misc/fake.ml bump -- one-way flag, single writer" ]
  in
  let results, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checkb "suppressed" true ((List.hd results).Report.suppressed <> None);
  let s = Option.get summary in
  checki "used" 1 s.Report.used;
  checki "unused" 0 (List.length s.Report.unused);
  (* Line numbers in the finding don't matter: same entry suppresses the
     finding after it drifts. *)
  let drifted = { fake_finding with Finding.line = 500 } in
  let results, _ =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ drifted ]
  in
  checkb "line drift still suppressed" true ((List.hd results).Report.suppressed <> None)

let test_baseline_expiry () =
  let b =
    baseline_of [ "LC001 lib/misc/fake.ml bump expires=2025-12-31 -- temporary" ]
  in
  let results, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checkb "expired entry no longer suppresses" true
    ((List.hd results).Report.suppressed = None);
  checki "reported as expired" 1 (List.length (Option.get summary).Report.expired);
  (* Same entry before its expiry date still works. *)
  let earlier = { Baseline.y = 2025; m = 6; d = 1 } in
  let results, _ =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:earlier [ fake_finding ]
  in
  checkb "pre-expiry suppresses" true ((List.hd results).Report.suppressed <> None)

let test_baseline_unused_and_scope () =
  let b =
    baseline_of
      [
        "LC001 lib/misc/fake.ml bump -- matches";
        "LC005 lib/misc/other.ml gone -- stale entry";
      ]
  in
  let _, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checki "stale entry reported unused" 1 (List.length (Option.get summary).Report.unused);
  (* Under --rules LC001 the LC005 entry had no chance to match: exempt. *)
  let _, summary =
    Driver.apply_baseline ~baseline:b ~rules:[ Rule.LC001 ] ~today:jan1 [ fake_finding ]
  in
  checki "out-of-run entries not unused" 0 (List.length (Option.get summary).Report.unused)

let test_baseline_rejects_garbage () =
  let bad lines =
    match Baseline.parse ~path:"b" (String.concat "\n" lines) with
    | Ok _ -> Alcotest.failf "expected parse failure for %s" (String.concat "|" lines)
    | Error _ -> ()
  in
  bad [ "LC001 lib/a.ml ctx" ] (* no justification *);
  bad [ "LC001 lib/a.ml ctx --  " ] (* empty justification *);
  bad [ "LC999 lib/a.ml ctx -- nope" ] (* unknown rule *);
  bad [ "LC001 lib/a.ml ctx expires=garbage -- x" ] (* bad date *)

(* ------------------------------------------------------------------ *)
(* Report JSON round-trip                                              *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  let b =
    baseline_of
      [
        "LC001 lib/misc/fake.ml bump expires=2027-06-30 -- single writer";
        "LC005 lib/misc/other.ml gone -- stale";
      ]
  in
  let findings =
    [
      fake_finding;
      {
        Finding.rule = Rule.LC005;
        file = "lib/misc/unsafe.ml";
        line = 4;
        col = 30;
        context = "coerce";
        message = "Obj.magic defeats the type system";
      };
    ]
  in
  let results, baseline =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 findings
  in
  {
    Report.root = ".";
    files_scanned = 2;
    rules = Rule.all;
    results;
    parse_errors = [];
    baseline;
  }

let test_report_roundtrip () =
  let r = sample_report () in
  let encoded = Json.to_string (Report.to_json r) in
  match Json.parse encoded with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok doc -> (
    match Report.of_json doc with
    | Error e -> Alcotest.failf "report JSON does not decode: %s" e
    | Ok r' ->
      checks "re-encoding is byte-identical" encoded (Json.to_string (Report.to_json r'));
      checki "one active survives" 1 (List.length (Report.active r'));
      checki "one suppressed survives" 1
        (List.length r'.Report.results - List.length (Report.active r')))

let test_report_rejects_lies () =
  let r = sample_report () in
  let doc =
    match Json.parse (Json.to_string (Report.to_json r)) with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let tamper key value = function
    | Json.Obj kvs ->
      Json.Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) kvs)
    | j -> j
  in
  (* A summary whose counts disagree with the findings list is invalid. *)
  let lied =
    tamper "summary"
      (Json.Obj
         [
           ("active", Json.Int 0);
           ("suppressed", Json.Int 0);
           ("parse_errors", Json.Int 0);
           ("exit_code", Json.Int 0);
         ])
      doc
  in
  checkb "inconsistent summary rejected" true (Result.is_error (Report.of_json lied));
  let wrong_schema = tamper "schema" (Json.String "bench") doc in
  checkb "wrong schema rejected" true (Result.is_error (Report.of_json wrong_schema));
  let wrong_version = tamper "version" (Json.Int 99) doc in
  checkb "unknown version rejected" true (Result.is_error (Report.of_json wrong_version))

(* ------------------------------------------------------------------ *)
(* Exit codes and rule parsing                                         *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let base = sample_report () in
  checki "active findings exit 1" 1 (Report.exit_code base);
  let all_clean =
    { base with Report.results = List.filter (fun a -> a.Report.suppressed <> None) base.results }
  in
  checki "fully suppressed exit 0" 0 (Report.exit_code all_clean);
  let broken =
    {
      base with
      Report.parse_errors =
        [ { Report.pe_file = "lib/x.ml"; pe_line = 1; pe_col = 0; pe_message = "boom" } ];
    }
  in
  checki "parse errors dominate: exit 2" 2 (Report.exit_code broken)

let test_rule_parse_list () =
  (match Rule.parse_list "LC005,LC001" with
  | Ok rs ->
    Alcotest.(check (list string)) "canonical order, both present" [ "LC001"; "LC005" ]
      (List.map Rule.id rs)
  | Error e -> Alcotest.failf "parse_list failed: %s" e);
  checkb "unknown rule rejected" true (Result.is_error (Rule.parse_list "LC001,LC999"));
  checkb "empty list rejected" true (Result.is_error (Rule.parse_list " , "))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "lc001" `Quick test_fixture_lc001;
          Alcotest.test_case "lc002" `Quick test_fixture_lc002;
          Alcotest.test_case "lc003" `Quick test_fixture_lc003;
          Alcotest.test_case "lc004" `Quick test_fixture_lc004;
          Alcotest.test_case "lc005" `Quick test_fixture_lc005;
          Alcotest.test_case "clean" `Quick test_fixture_clean;
          Alcotest.test_case "rules filter" `Quick test_rules_filter;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "suppresses by context" `Quick test_baseline_suppresses;
          Alcotest.test_case "expiry" `Quick test_baseline_expiry;
          Alcotest.test_case "unused accounting" `Quick test_baseline_unused_and_scope;
          Alcotest.test_case "rejects garbage" `Quick test_baseline_rejects_garbage;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects inconsistent documents" `Quick test_report_rejects_lies;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "rule list parsing" `Quick test_rule_parse_list;
        ] );
    ]
