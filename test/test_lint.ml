(* Tier-1 tests for lc_lint: each planted fixture triggers exactly its
   rule (the typed pipeline runs end to end, call-graph rules included),
   the clean fixture triggers nothing, baseline v2 entries parse,
   round-trip, suppress / expire / warn when prose-only, the lowcon-lint
   JSON report round-trips through its own decoder, missing or corrupt
   .cmt inputs exit 2 with the file named, and exit codes follow the
   0/1/2 contract. *)

module Rule = Lc_lint.Rule
module Finding = Lc_lint.Finding
module Baseline = Lc_lint.Baseline
module Hotpath = Lc_lint.Hotpath
module Driver = Lc_lint.Driver
module Report = Lc_lint.Report
module Sarif = Lc_lint.Sarif
module Json = Lc_obs.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let read_fixture name =
  let ic = open_in_bin (Filename.concat "fixtures/lint" name) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture ?hot ?rules ?claims ~path name =
  match Driver.lint_source ?hot ?rules ?claims ~path (read_fixture name) with
  | Ok findings -> findings
  | Error pe -> Alcotest.failf "fixture %s failed to typecheck: %s" name pe.Report.pe_message

let rule_ids findings = List.map (fun f -> Rule.id f.Finding.rule) findings

(* ------------------------------------------------------------------ *)
(* Fixtures: one rule each                                             *)
(* ------------------------------------------------------------------ *)

let test_fixture_lc001 () =
  let fs = lint_fixture ~path:"lib/misc/fake.ml" "lc001.ml" in
  Alcotest.(check (list string)) "exactly one LC001" [ "LC001" ] (rule_ids fs);
  checks "context is the binding" "bump" (List.hd fs).Finding.context

let test_fixture_lc002 () =
  let fs = lint_fixture ~path:"lib/parallel/fake.ml" "lc002.ml" in
  Alcotest.(check (list string)) "exactly one LC002" [ "LC002" ] (rule_ids fs);
  (* The same file under a cold path is silent: the rule is scoped. *)
  checki "cold path silent" 0
    (List.length (lint_fixture ~path:"lib/analysis/fake.ml" "lc002.ml"))

let test_fixture_lc003 () =
  let fs = lint_fixture ~path:"lib/obs/fake.ml" "lc003.ml" in
  Alcotest.(check (list string))
    "type decl + setfield, both LC003" [ "LC003"; "LC003" ] (rule_ids fs);
  checki "cold scope silent" 0
    (List.length (lint_fixture ~path:"lib/dict/fake.ml" "lc003.ml"))

let test_fixture_lc004 () =
  let hot =
    {
      Hotpath.default with
      Hotpath.hot_functions =
        (fun p -> if p = "lib/misc/hot.ml" then [ "probe_loop" ] else []);
    }
  in
  let fs = lint_fixture ~hot ~path:"lib/misc/hot.ml" "lc004.ml" in
  Alcotest.(check (list string)) "exactly one LC004" [ "LC004" ] (rule_ids fs);
  checki "off-manifest silent" 0
    (List.length (lint_fixture ~hot ~path:"lib/misc/cold.ml" "lc004.ml"))

let test_fixture_lc005 () =
  let fs = lint_fixture ~path:"lib/misc/unsafe.ml" "lc005.ml" in
  Alcotest.(check (list string)) "exactly one LC005" [ "LC005" ] (rule_ids fs)

(* LC006: the call graph refutes an owner= claim with a planted second
   writer, and verifies the claim once the owner list covers it. *)
let test_fixture_lc006 () =
  let claim owners =
    match
      Baseline.parse ~path:"b"
        (Printf.sprintf "LC003 lib/dynamic/fake6.ml apply owner=%s -- builder-owned" owners)
    with
    | Ok b -> b.Baseline.entries
    | Error e -> Alcotest.failf "claim parse failed: %s" e
  in
  let fs =
    lint_fixture ~rules:[ Rule.LC006 ] ~claims:(claim "Fake6.serve")
      ~path:"lib/dynamic/fake6.ml" "lc006.ml"
  in
  Alcotest.(check (list string)) "exactly one LC006" [ "LC006" ] (rule_ids fs);
  checks "violation surfaces at the unaccounted caller" "sneak"
    (List.hd fs).Finding.context;
  checki "claim covering every path verifies clean" 0
    (List.length
       (lint_fixture ~rules:[ Rule.LC006 ]
          ~claims:(claim "Fake6.serve,Fake6.sneak")
          ~path:"lib/dynamic/fake6.ml" "lc006.ml"))

(* LC007: a plain published-state read fires only when no pin dominates
   it — locally or through every caller path. *)
let lc007_hot =
  {
    Hotpath.default with
    Hotpath.published_types = [ "Fake7.snapshot" ];
    pin_functions = [ "Fake7.pin" ];
  }

let test_fixture_lc007 () =
  let fs =
    lint_fixture ~hot:lc007_hot ~rules:[ Rule.LC007 ] ~path:"lib/dynamic/fake7.ml"
      "lc007.ml"
  in
  Alcotest.(check (list string)) "exactly one LC007" [ "LC007" ] (rule_ids fs);
  checks "the unpinned read is the one flagged" "bad" (List.hd fs).Finding.context

(* LC008: the manifest closes over the call graph — an allocation two
   calls below the root is flagged even though LC004's direct audit of
   the root never sees it. This is the manifest-drift regression: before
   the call-graph rules, [deep] had to be listed by hand or was missed. *)
let test_fixture_lc008 () =
  let hot =
    {
      Hotpath.default with
      Hotpath.hot_functions = (fun p -> if p = "lib/misc/hot8.ml" then [ "probe" ] else []);
    }
  in
  let fs = lint_fixture ~hot ~rules:[ Rule.LC008 ] ~path:"lib/misc/hot8.ml" "lc008.ml" in
  Alcotest.(check (list string)) "closure + combinator, both LC008" [ "LC008"; "LC008" ]
    (rule_ids fs);
  List.iter (fun f -> checks "both sites in the deep helper" "deep" f.Finding.context) fs;
  checkb "closure carries a words estimate" true
    (List.exists (fun f -> f.Finding.words <> None) fs);
  (* LC004 alone still misses it: the drift the closure rule closes. *)
  checki "LC004 direct audit is blind to the helper" 0
    (List.length (lint_fixture ~hot ~rules:[ Rule.LC004 ] ~path:"lib/misc/hot8.ml" "lc008.ml"))

let test_fixture_clean () =
  checki "clean fixture, hot shared path" 0
    (List.length (lint_fixture ~path:"lib/parallel/clean.ml" "clean.ml"))

let test_rules_filter () =
  (* lc003.ml under shared scope fires LC003 only when LC003 is run. *)
  let content = read_fixture "lc003.ml" in
  let lint rules =
    match Driver.lint_source ~rules ~path:"lib/obs/fake.ml" content with
    | Ok fs -> List.length fs
    | Error _ -> Alcotest.fail "parse failed"
  in
  checki "LC003 subset fires" 2 (lint [ Rule.LC003 ]);
  checki "disjoint subset silent" 0 (lint [ Rule.LC001; Rule.LC005 ])

let test_parse_failure () =
  match Driver.lint_source ~path:"lib/misc/broken.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error pe -> checks "error carries the logical path" "lib/misc/broken.ml" pe.Report.pe_file

let test_typecheck_failure () =
  (* The pipeline is typed: a file that parses but does not typecheck is
     a parse error, not a silent skip. *)
  match Driver.lint_source ~path:"lib/misc/illtyped.ml" "let x : int = \"s\"" with
  | Ok _ -> Alcotest.fail "expected a type error"
  | Error pe -> checks "error carries the logical path" "lib/misc/illtyped.ml" pe.Report.pe_file

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let jan1 = { Baseline.y = 2026; m = 1; d = 1 }

let baseline_of lines =
  match Baseline.parse ~path:"test-baseline" (String.concat "\n" lines) with
  | Ok b -> b
  | Error e -> Alcotest.failf "baseline parse failed: %s" e

let fake_finding =
  Finding.make ~rule:Rule.LC001 ~file:"lib/misc/fake.ml" ~line:5 ~col:2 ~context:"bump"
    ~message:"planted"

let test_baseline_suppresses () =
  let b =
    baseline_of
      [ "# comment"; ""; "LC001 lib/misc/fake.ml bump -- one-way flag, single writer" ]
  in
  let results, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checkb "suppressed" true ((List.hd results).Report.suppressed <> None);
  let s = Option.get summary in
  checki "used" 1 s.Report.used;
  checki "unused" 0 (List.length s.Report.unused);
  (* Line numbers in the finding don't matter: same entry suppresses the
     finding after it drifts. *)
  let drifted = { fake_finding with Finding.line = 500 } in
  let results, _ =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ drifted ]
  in
  checkb "line drift still suppressed" true ((List.hd results).Report.suppressed <> None)

let test_baseline_expiry () =
  let b =
    baseline_of [ "LC001 lib/misc/fake.ml bump expires=2025-12-31 -- temporary" ]
  in
  let results, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checkb "expired entry no longer suppresses" true
    ((List.hd results).Report.suppressed = None);
  checki "reported as expired" 1 (List.length (Option.get summary).Report.expired);
  (* Same entry before its expiry date still works. *)
  let earlier = { Baseline.y = 2025; m = 6; d = 1 } in
  let results, _ =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:earlier [ fake_finding ]
  in
  checkb "pre-expiry suppresses" true ((List.hd results).Report.suppressed <> None)

let test_baseline_unused_and_scope () =
  let b =
    baseline_of
      [
        "LC001 lib/misc/fake.ml bump -- matches";
        "LC005 lib/misc/other.ml gone -- stale entry";
      ]
  in
  let _, summary =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [ fake_finding ]
  in
  checki "stale entry reported unused" 1 (List.length (Option.get summary).Report.unused);
  (* Under --rules LC001 the LC005 entry had no chance to match: exempt. *)
  let _, summary =
    Driver.apply_baseline ~baseline:b ~rules:[ Rule.LC001 ] ~today:jan1 [ fake_finding ]
  in
  checki "out-of-run entries not unused" 0 (List.length (Option.get summary).Report.unused)

(* Baseline grammar v2: owner=/protocol= tags parse in any order,
   round-trip through entry_to_string, and bad tags fail loudly. *)
let test_baseline_v2_tags () =
  let b =
    baseline_of
      [
        "LC003 lib/dynamic/epoch.ml insert owner=Engine.serve_dynamic,Opstream.apply \
         protocol=epoch expires=2027-06-30 -- builder-owned levels";
      ]
  in
  let e = List.hd b.Baseline.entries in
  Alcotest.(check (list string))
    "owners parsed" [ "Engine.serve_dynamic"; "Opstream.apply" ] e.Baseline.owner;
  checks "protocol parsed" "epoch" (Option.get e.Baseline.protocol);
  checkb "tagged" true (Baseline.tagged e);
  checks "round-trips"
    "LC003 lib/dynamic/epoch.ml insert owner=Engine.serve_dynamic,Opstream.apply \
     protocol=epoch expires=2027-06-30"
    (Baseline.entry_to_string e);
  (* Order-insensitive between context and ' -- '. *)
  let b2 =
    baseline_of [ "LC003 lib/a.ml f protocol=seqlock owner=W.publish -- reordered" ]
  in
  let e2 = List.hd b2.Baseline.entries in
  Alcotest.(check (list string)) "owner after protocol" [ "W.publish" ] e2.Baseline.owner;
  checks "protocol" "seqlock" (Option.get e2.Baseline.protocol)

let test_baseline_untagged_warns () =
  let b =
    baseline_of
      [
        "LC003 lib/a.ml f protocol=domain-local -- typed claim";
        "LC003 lib/b.ml g -- prose only";
      ]
  in
  let _, summary = Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 [] in
  let s = Option.get summary in
  checki "one prose-only entry warned" 1 (List.length s.Report.untagged);
  checkb "the untagged one is the proseful one" true
    (match s.Report.untagged with [ (text, _) ] -> text = "LC003 lib/b.ml g" | _ -> false)

let test_baseline_rejects_garbage () =
  let bad lines =
    match Baseline.parse ~path:"b" (String.concat "\n" lines) with
    | Ok _ -> Alcotest.failf "expected parse failure for %s" (String.concat "|" lines)
    | Error _ -> ()
  in
  bad [ "LC001 lib/a.ml ctx" ] (* no justification *);
  bad [ "LC001 lib/a.ml ctx --  " ] (* empty justification *);
  bad [ "LC999 lib/a.ml ctx -- nope" ] (* unknown rule *);
  bad [ "LC001 lib/a.ml ctx expires=garbage -- x" ] (* bad date *);
  bad [ "LC003 lib/a.ml ctx owner=lowercase -- x" ] (* not Module.fn *);
  bad [ "LC003 lib/a.ml ctx owner=NoDot -- x" ] (* no function part *);
  bad [ "LC003 lib/a.ml ctx protocol=vibes -- x" ] (* unknown protocol *);
  bad [ "LC003 lib/a.ml ctx owner=A.f owner=B.g -- x" ] (* duplicate tag *)

(* ------------------------------------------------------------------ *)
(* Report JSON round-trip                                              *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  let b =
    baseline_of
      [
        "LC001 lib/misc/fake.ml bump protocol=setup-once expires=2027-06-30 -- single writer";
        "LC005 lib/misc/other.ml gone -- stale";
      ]
  in
  let findings =
    [
      fake_finding;
      Finding.make ~rule:Rule.LC005 ~file:"lib/misc/unsafe.ml" ~line:4 ~col:30
        ~context:"coerce" ~message:"Obj.magic defeats the type system";
      {
        (Finding.make ~rule:Rule.LC008 ~file:"lib/misc/hot8.ml" ~line:8 ~col:14
           ~context:"deep" ~message:"closure on the hot path from Hot8.probe")
        with
        Finding.words = Some 3;
      };
    ]
  in
  let results, baseline =
    Driver.apply_baseline ~baseline:b ~rules:Rule.all ~today:jan1 findings
  in
  {
    Report.root = ".";
    files_scanned = 2;
    rules = Rule.all;
    results;
    parse_errors = [];
    baseline;
  }

let test_report_roundtrip () =
  let r = sample_report () in
  let encoded = Json.to_string (Report.to_json r) in
  match Json.parse encoded with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok doc -> (
    match Report.of_json doc with
    | Error e -> Alcotest.failf "report JSON does not decode: %s" e
    | Ok r' ->
      checks "re-encoding is byte-identical" encoded (Json.to_string (Report.to_json r'));
      checki "two active survive" 2 (List.length (Report.active r'));
      checki "one suppressed survives" 1
        (List.length r'.Report.results - List.length (Report.active r'));
      checkb "words survives the round-trip" true
        (List.exists (fun a -> a.Report.finding.Finding.words = Some 3) r'.Report.results))

let test_report_rejects_lies () =
  let r = sample_report () in
  let doc =
    match Json.parse (Json.to_string (Report.to_json r)) with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let tamper key value = function
    | Json.Obj kvs ->
      Json.Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) kvs)
    | j -> j
  in
  (* A summary whose counts disagree with the findings list is invalid. *)
  let lied =
    tamper "summary"
      (Json.Obj
         [
           ("active", Json.Int 0);
           ("suppressed", Json.Int 0);
           ("parse_errors", Json.Int 0);
           ("exit_code", Json.Int 0);
         ])
      doc
  in
  checkb "inconsistent summary rejected" true (Result.is_error (Report.of_json lied));
  let wrong_schema = tamper "schema" (Json.String "bench") doc in
  checkb "wrong schema rejected" true (Result.is_error (Report.of_json wrong_schema));
  let wrong_version = tamper "version" (Json.Int 99) doc in
  checkb "unknown version rejected" true (Result.is_error (Report.of_json wrong_version))

(* ------------------------------------------------------------------ *)
(* SARIF export                                                        *)
(* ------------------------------------------------------------------ *)

let test_sarif_valid_and_faithful () =
  let r = sample_report () in
  let sarif = Sarif.of_report r in
  (match Sarif.validate sarif with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self-produced SARIF invalid: %s" e);
  (* Survives a serialisation round-trip too. *)
  (match Json.parse (Json.to_string sarif) with
  | Ok doc -> (
    match Sarif.validate doc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "re-parsed SARIF invalid: %s" e)
  | Error e -> Alcotest.failf "SARIF does not parse: %s" e);
  (* One result per finding; the suppressed one carries a suppression. *)
  let runs = match Json.member "runs" sarif with Some (Json.List l) -> l | _ -> [] in
  let results =
    match Json.member "results" (List.hd runs) with Some (Json.List l) -> l | _ -> []
  in
  checki "one result per finding" 3 (List.length results);
  checki "exactly one suppressed result" 1
    (List.length
       (List.filter (fun res -> Json.member "suppressions" res <> None) results))

let test_sarif_validator_rejects () =
  let reject label doc =
    checkb label true (Result.is_error (Sarif.validate doc))
  in
  reject "wrong version"
    (Json.Obj [ ("version", Json.String "2.0.0"); ("runs", Json.List []) ]);
  reject "empty runs" (Json.Obj [ ("version", Json.String "2.1.0"); ("runs", Json.List []) ]);
  let run_with_result res =
    Json.Obj
      [
        ("version", Json.String "2.1.0");
        ( "runs",
          Json.List
            [
              Json.Obj
                [
                  ( "tool",
                    Json.Obj
                      [
                        ( "driver",
                          Json.Obj
                            [
                              ("name", Json.String "x");
                              ( "rules",
                                Json.List [ Json.Obj [ ("id", Json.String "LC001") ] ] );
                            ] );
                      ] );
                  ("results", Json.List [ res ]);
                ];
            ] );
      ]
  in
  reject "undeclared ruleId"
    (run_with_result
       (Json.Obj
          [
            ("ruleId", Json.String "LC999");
            ("message", Json.Obj [ ("text", Json.String "m") ]);
            ("locations", Json.List []);
          ]));
  reject "0-based startLine"
    (run_with_result
       (Json.Obj
          [
            ("ruleId", Json.String "LC001");
            ("message", Json.Obj [ ("text", Json.String "m") ]);
            ( "locations",
              Json.List
                [
                  Json.Obj
                    [
                      ( "physicalLocation",
                        Json.Obj
                          [
                            ( "artifactLocation",
                              Json.Obj [ ("uri", Json.String "lib/a.ml") ] );
                            ("region", Json.Obj [ ("startLine", Json.Int 0) ]);
                          ] );
                    ];
                ] );
          ]))

(* ------------------------------------------------------------------ *)
(* .cmt error handling                                                 *)
(* ------------------------------------------------------------------ *)

let with_temp_root f =
  let dir = Filename.temp_file "lclint" "" in
  Sys.remove dir;
  let rec mkdirs d =
    if not (Sys.file_exists d) then (
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755)
  in
  mkdirs (Filename.concat dir "_build/default/lib");
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_missing_cmts_exit_2 () =
  with_temp_root @@ fun dir ->
  (* Empty _build: nothing the typed pipeline can vouch for. *)
  let r = Driver.run ~build:false ~root:dir () in
  checki "no .cmt set is a parse error" 2 (Report.exit_code r);
  checkb "the error names the search root" true
    (match r.Report.parse_errors with
    | [ pe ] -> pe.Report.pe_file = "_build/default/lib"
    | _ -> false)

let test_corrupt_cmt_exit_2 () =
  with_temp_root @@ fun dir ->
  let bad = Filename.concat dir "_build/default/lib/garbage.cmt" in
  let oc = open_out_bin bad in
  output_string oc "not a cmt file";
  close_out oc;
  let r = Driver.run ~build:false ~root:dir () in
  checki "corrupt .cmt exits 2" 2 (Report.exit_code r);
  checkb "the error names the file" true
    (List.exists
       (fun pe -> pe.Report.pe_file = "_build/default/lib/garbage.cmt")
       r.Report.parse_errors)

(* ------------------------------------------------------------------ *)
(* Exit codes and rule parsing                                         *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let base = sample_report () in
  checki "active findings exit 1" 1 (Report.exit_code base);
  let all_clean =
    { base with Report.results = List.filter (fun a -> a.Report.suppressed <> None) base.results }
  in
  checki "fully suppressed exit 0" 0 (Report.exit_code all_clean);
  let broken =
    {
      base with
      Report.parse_errors =
        [ { Report.pe_file = "lib/x.ml"; pe_line = 1; pe_col = 0; pe_message = "boom" } ];
    }
  in
  checki "parse errors dominate: exit 2" 2 (Report.exit_code broken)

let test_rule_parse_list () =
  (match Rule.parse_list "LC005,LC001" with
  | Ok rs ->
    Alcotest.(check (list string)) "canonical order, both present" [ "LC001"; "LC005" ]
      (List.map Rule.id rs)
  | Error e -> Alcotest.failf "parse_list failed: %s" e);
  (match Rule.parse_list "LC006,LC007,LC008" with
  | Ok rs ->
    Alcotest.(check (list string)) "call-graph rules parse" [ "LC006"; "LC007"; "LC008" ]
      (List.map Rule.id rs)
  | Error e -> Alcotest.failf "parse_list failed: %s" e);
  checkb "unknown rule rejected" true (Result.is_error (Rule.parse_list "LC001,LC999"));
  checkb "empty list rejected" true (Result.is_error (Rule.parse_list " , "))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "lc001" `Quick test_fixture_lc001;
          Alcotest.test_case "lc002" `Quick test_fixture_lc002;
          Alcotest.test_case "lc003" `Quick test_fixture_lc003;
          Alcotest.test_case "lc004" `Quick test_fixture_lc004;
          Alcotest.test_case "lc005" `Quick test_fixture_lc005;
          Alcotest.test_case "lc006 ownership" `Quick test_fixture_lc006;
          Alcotest.test_case "lc007 pin domination" `Quick test_fixture_lc007;
          Alcotest.test_case "lc008 manifest closure" `Quick test_fixture_lc008;
          Alcotest.test_case "clean" `Quick test_fixture_clean;
          Alcotest.test_case "rules filter" `Quick test_rules_filter;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
          Alcotest.test_case "typecheck failure" `Quick test_typecheck_failure;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "suppresses by context" `Quick test_baseline_suppresses;
          Alcotest.test_case "expiry" `Quick test_baseline_expiry;
          Alcotest.test_case "unused accounting" `Quick test_baseline_unused_and_scope;
          Alcotest.test_case "v2 tags round-trip" `Quick test_baseline_v2_tags;
          Alcotest.test_case "prose-only entries warn" `Quick test_baseline_untagged_warns;
          Alcotest.test_case "rejects garbage" `Quick test_baseline_rejects_garbage;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects inconsistent documents" `Quick test_report_rejects_lies;
          Alcotest.test_case "sarif valid and faithful" `Quick test_sarif_valid_and_faithful;
          Alcotest.test_case "sarif validator rejects" `Quick test_sarif_validator_rejects;
          Alcotest.test_case "missing cmts exit 2" `Quick test_missing_cmts_exit_2;
          Alcotest.test_case "corrupt cmt exits 2" `Quick test_corrupt_cmt_exit_2;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "rule list parsing" `Quick test_rule_parse_list;
        ] );
    ]
