(* Tier-1 tests for the observability layer: the JSON codec, the sharded
   metrics registry (log-bucket boundaries, multi-shard merge, growth on
   late registration), span balance and Chrome-trace export, and the
   acceptance criteria for the instrumented engine — telemetry off means
   a byte-identical result, telemetry on reconciles exactly with the
   engine's own probe accounting. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Keyset = Lc_workload.Keyset
module Engine = Lc_parallel.Engine
module Json = Lc_obs.Json
module Metrics = Lc_obs.Metrics
module Span = Lc_obs.Span
module Export = Lc_obs.Export
module Obs = Lc_obs.Obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let universe = 1 lsl 18
let n = 256

let lc_fixture seed =
  let rng = Rng.create seed in
  let keys = Keyset.random rng ~universe ~n in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  (keys, Lc_core.Dictionary.instance dict)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("nested", Json.Obj [ ("s", Json.String "quote \" backslash \\ newline \n tab \t") ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("neg", Json.Int (-7));
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok doc' -> checkb "round-trip preserves the document" true (doc = doc')

let test_json_numbers () =
  (match Json.parse "[0, -12, 3.25, 1e3, 2E-2]" with
  | Ok (Json.List [ Json.Int 0; Json.Int (-12); Json.Float f1; Json.Float f2; Json.Float f3 ])
    ->
    checkb "3.25 exact" true (f1 = 3.25);
    checkb "1e3 exact" true (f2 = 1000.0);
    checkb "2E-2 exact" true (f3 = 0.02)
  | Ok _ -> Alcotest.fail "wrong shape for number list"
  | Error e -> Alcotest.fail e);
  checkb "int stays Int through print" true (Json.to_string (Json.Int 123) = "123")

let test_json_rejects () =
  let bad s = checkb (Printf.sprintf "rejects %S" s) true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,]";
  bad "\"unterminated";
  bad "truu";
  bad "{\"a\":1} trailing";
  bad "{'single':1}";
  bad "[1 2]"

let test_json_escapes () =
  match Json.parse {|"aA\n\"b\\"|} with
  | Ok (Json.String s) -> checks "escape decoding" "aA\n\"b\\" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_bucket_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  let sh = Metrics.shard m ~domain:0 in
  List.iter (fun v -> Metrics.observe sh h v) [ 0; 1; 2; 3; 4; 7; 8 ];
  let snap = Metrics.snapshot m in
  match Metrics.Snapshot.find_hist snap "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hist ->
    (* 0 -> bucket upper 0; 1 -> 1; 2,3 -> 3; 4,7 -> 7; 8 -> 15. *)
    Alcotest.(check (array (pair int int)))
      "log-bucket boundaries at powers of two"
      [| (0, 1); (1, 1); (3, 2); (7, 2); (15, 1) |]
      hist.buckets;
    checki "count" 7 hist.count;
    checki "sum" 25 hist.sum;
    checki "max" 8 hist.max_value

let test_metrics_multi_shard_merge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m "h" in
  let sh0 = Metrics.shard m ~domain:0 in
  let sh1 = Metrics.shard m ~domain:1 in
  Metrics.incr sh0 c 3;
  Metrics.incr sh1 c 4;
  Metrics.set_gauge sh0 g 1.5;
  Metrics.set_gauge sh1 g 2.5;
  Metrics.observe sh0 h 5;
  Metrics.observe sh1 h 5;
  Metrics.observe sh1 h 100;
  let snap = Metrics.snapshot m in
  checki "counters sum across shards" 7
    (Option.get (Metrics.Snapshot.counter_value snap "c"));
  checkb "gauges sum across shards" true
    (Option.get (Metrics.Snapshot.gauge_value snap "g") = 4.0);
  let hist = Option.get (Metrics.Snapshot.find_hist snap "h") in
  checki "histogram count merges" 3 hist.count;
  checki "histogram sum merges" 110 hist.sum;
  checki "same-bucket observations merge" 2
    (snd (Array.get hist.buckets 0))

let test_metrics_register_after_shard () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "first" in
  let sh = Metrics.shard m ~domain:0 in
  Metrics.incr sh c1 1;
  (* Registering after the shard exists must grow its storage. *)
  let c2 = Metrics.counter m "second" in
  let h = Metrics.histogram m "late_hist" in
  Metrics.incr sh c2 9;
  Metrics.observe sh h 2;
  let snap = Metrics.snapshot m in
  checki "pre-existing counter intact" 1
    (Option.get (Metrics.Snapshot.counter_value snap "first"));
  checki "late counter recorded" 9
    (Option.get (Metrics.Snapshot.counter_value snap "second"));
  checki "late histogram recorded" 1
    (Option.get (Metrics.Snapshot.find_hist snap "late_hist")).count;
  checkb "same name returns same metric" true (Metrics.counter m "first" = c1);
  checkb "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "first" : Metrics.gauge);
       false
     with Invalid_argument _ -> true)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  let sh = Metrics.shard m ~domain:0 in
  for _ = 1 to 1000 do
    Metrics.observe sh h 100
  done;
  let hist = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "h") in
  let p50 = Metrics.Snapshot.quantile hist 0.5 in
  (* All mass in bucket [64, 127], clamped at the exact max. *)
  checkb "p50 inside the mass bucket" true (p50 >= 64.0 && p50 <= 100.0);
  checkb "p100 clamps to exact max" true (Metrics.Snapshot.quantile hist 1.0 = 100.0);
  checkb "mean exact" true (Metrics.Snapshot.mean hist = 100.0);
  let empty = Metrics.histogram m "empty" in
  ignore (Metrics.shard m ~domain:0);
  ignore empty;
  let e = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "empty") in
  checkb "empty quantile is 0" true (Metrics.Snapshot.quantile e 0.5 = 0.0)

(* ------------------------------------------------------------------ *)
(* Span                                                                 *)
(* ------------------------------------------------------------------ *)

let test_span_balance () =
  let s = Span.create () in
  let tl = Span.timeline s ~tid:0 in
  Span.with_span tl "outer" (fun () ->
      Span.with_span tl "inner" (fun () -> Span.instant tl "mark"));
  checkb "balanced after with_span nesting" true (Span.check_balanced s = Ok ());
  Span.begin_span tl "dangling";
  checkb "open span detected" true (Result.is_error (Span.check_balanced s));
  Span.end_span tl;
  checkb "balanced again" true (Span.check_balanced s = Ok ());
  checkb "end without begin raises" true
    (try
       Span.end_span tl;
       false
     with Invalid_argument _ -> true)

let test_span_chrome_json () =
  let s = Span.create () in
  let tl0 = Span.timeline s ~tid:0 in
  let tl1 = Span.timeline s ~tid:1 in
  Span.with_span tl0 "alpha" (fun () -> Span.with_span tl0 "beta" (fun () -> ()));
  Span.with_span tl1 "gamma" (fun () -> Span.instant tl1 "tick");
  match Json.parse (Span.to_chrome_json s) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    let events = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
    checki "3 spans x 2 events + 1 instant" 7 (List.length events);
    List.iter
      (fun e ->
        checkb "every event has a name" true (Json.member "name" e <> None);
        checkb "every event has a ts" true (Json.member "ts" e <> None);
        checkb "ph is B/E/i" true
          (match Option.bind (Json.member "ph" e) Json.string_value with
          | Some ("B" | "E" | "i") -> true
          | _ -> false))
      events

let test_span_summary () =
  let s = Span.create () in
  let tl = Span.timeline s ~tid:3 in
  Span.with_span tl "work" (fun () ->
      Span.with_span tl "sub" (fun () -> ());
      Span.with_span tl "sub" (fun () -> ()));
  let text = Span.summary s in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "summary names the timeline" true (contains "tid 3");
  checkb "summary lists the parent" true (contains "work");
  checkb "summary aggregates repeated children" true (contains "2 calls")

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let test_export_prometheus_and_json () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"a counter" "dotted.name_total" in
  let h = Metrics.histogram m "lat" in
  let sh = Metrics.shard m ~domain:0 in
  Metrics.incr sh c 5;
  Metrics.observe sh h 3;
  Metrics.observe sh h 200;
  let snap = Metrics.snapshot m in
  let prom = Export.prometheus snap in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length prom
      && (String.sub prom i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "counter exposed with sanitized name" true (has "dotted_name_total 5");
  checkb "TYPE line present" true (has "# TYPE dotted_name_total counter");
  checkb "histogram cumulative +Inf bucket" true (has "lat_bucket{le=\"+Inf\"} 2");
  checkb "histogram sum" true (has "lat_sum 203");
  match Json.parse (Export.json_snapshot snap) with
  | Error e -> Alcotest.failf "json snapshot does not parse: %s" e
  | Ok doc ->
    let counters = Option.get (Json.member "counters" doc) in
    checkb "counter value in json" true
      (Option.bind (Json.member "dotted.name_total" counters) Json.int_value = Some 5)

(* ------------------------------------------------------------------ *)
(* Engine acceptance                                                    *)
(* ------------------------------------------------------------------ *)

(* Wall-clock fields vary run to run; everything else must not. *)
let normalized (r : Engine.result) = { r with Engine.seconds = 0.0; throughput = 0.0 }

let marshal r = Marshal.to_string (normalized r) []

let test_engine_obs_off_is_byte_identical () =
  let keys, inst = lc_fixture 21 in
  let keys_dist = Qdist.uniform ~name:"pos" keys in
  let serve ?obs () =
    Engine.serve ?obs ~domains:2 ~queries_per_domain:600 ~seed:33 inst keys_dist
  in
  let r1 = serve () in
  let r2 = serve () in
  checks "two uninstrumented runs marshal identically" (marshal r1) (marshal r2);
  let r3 = serve ~obs:(Obs.create ()) () in
  checks "telemetry does not perturb the result record" (marshal r1) (marshal r3)

let test_engine_obs_reconciles () =
  let keys, inst = lc_fixture 22 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r = Engine.serve ~obs ~domains:3 ~queries_per_domain:700 ~seed:5 inst qd in
  let snap = Obs.snapshot obs in
  checki "engine_probes_total = result.total_probes" r.Engine.total_probes
    (Option.get (Metrics.Snapshot.counter_value snap "engine_probes_total"));
  checki "engine_queries_total = result.queries" r.Engine.queries
    (Option.get (Metrics.Snapshot.counter_value snap "engine_queries_total"));
  let lat = Option.get (Metrics.Snapshot.find_hist snap "engine_query_latency_ns") in
  checki "one latency observation per query" r.Engine.queries lat.count;
  checkb "domains gauge" true
    (Metrics.Snapshot.gauge_value snap "engine_domains" = Some 3.0)

let test_engine_obs_trace_balanced () =
  let keys, inst = lc_fixture 23 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r = Engine.serve ~obs ~domains:3 ~queries_per_domain:300 ~seed:6 inst qd in
  checki "sanity: all queries served" 900 r.Engine.queries;
  checkb "collector reports balance" true (Span.check_balanced obs.Obs.spans = Ok ());
  (* Independently re-check balance from the emitted JSON itself. *)
  match Json.parse (Span.to_chrome_json obs.Obs.spans) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok doc ->
    let events = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
    checkb "trace has events" true (List.length events > 0);
    let depth : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let tids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let tid = Option.get (Option.bind (Json.member "tid" e) Json.int_value) in
        Hashtbl.replace tids tid ();
        let d =
          match Hashtbl.find_opt depth tid with
          | Some d -> d
          | None ->
            let d = ref 0 in
            Hashtbl.add depth tid d;
            d
        in
        match Option.bind (Json.member "ph" e) Json.string_value with
        | Some "B" -> incr d
        | Some "E" ->
          decr d;
          checkb "no E before B" true (!d >= 0)
        | _ -> ())
      events;
    Hashtbl.iter
      (fun tid d -> checki (Printf.sprintf "tid %d ends at depth 0" tid) 0 !d)
      depth;
    (* Orchestrator + one timeline per worker domain. *)
    checki "timelines = domains + 1" 4 (Hashtbl.length tids)

let test_engine_obs_spinlock_wait () =
  let keys, inst = lc_fixture 24 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r =
    Engine.serve ~cost:(Engine.Spinlock { hold = 2 }) ~obs ~domains:2 ~queries_per_domain:400
      ~seed:7 inst qd
  in
  let snap = Obs.snapshot obs in
  let wait = Option.get (Metrics.Snapshot.find_hist snap "engine_spinlock_wait_ns") in
  checki "one wait observation per probe" r.Engine.total_probes wait.count;
  let free = Engine.serve ~domains:2 ~queries_per_domain:400 ~seed:7 inst qd in
  checki "same tallies as the free uninstrumented run" free.Engine.total_probes
    r.Engine.total_probes

(* ------------------------------------------------------------------ *)
(* Build-stage telemetry                                                *)
(* ------------------------------------------------------------------ *)

let test_build_obs_spans_and_counters () =
  let rng = Rng.create 31 in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Obs.create () in
  let dict = Lc_core.Dictionary.build ~obs rng ~universe ~keys in
  checkb "build trace balanced" true (Span.check_balanced obs.Obs.spans = Ok ());
  let snap = Obs.snapshot obs in
  checki "trial counter matches the structure's own count"
    (Lc_core.Dictionary.build_trials dict)
    (Option.get (Metrics.Snapshot.counter_value snap "build_ps_trials_total"));
  let rejects =
    Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_g_total")
    + Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_group_total")
    + Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_fks_total")
  in
  checki "rejects = trials - 1" (Lc_core.Dictionary.build_trials dict - 1) rejects;
  checkb "perfect-hash trials recorded" true
    (Option.get (Metrics.Snapshot.counter_value snap "build_perfect_trials_total") > 0);
  let text = Span.summary obs.Obs.spans in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun stage -> checkb (Printf.sprintf "summary names %s" stage) true (contains stage))
    [ "build"; "P(S)-sampling"; "layout-gbas"; "perfect-hashing"; "write-rows" ]

(* Build then serve on one handle: the profile subcommand's flow. Late
   engine registrations must not disturb the build-stage counters. *)
let test_build_then_serve_shared_handle () =
  let rng = Rng.create 32 in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Obs.create () in
  let dict = Lc_core.Dictionary.build ~obs rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let qd = Qdist.uniform ~name:"pos" keys in
  let r = Engine.serve ~obs ~domains:2 ~queries_per_domain:300 ~seed:8 inst qd in
  let snap = Obs.snapshot obs in
  checki "build trials survive engine registration"
    (Lc_core.Dictionary.build_trials dict)
    (Option.get (Metrics.Snapshot.counter_value snap "build_ps_trials_total"));
  checki "probe counter reconciles on the shared handle" r.Engine.total_probes
    (Option.get (Metrics.Snapshot.counter_value snap "engine_probes_total"));
  checkb "combined trace balanced" true (Span.check_balanced obs.Obs.spans = Ok ())

let () =
  Alcotest.run "lc_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "escape decoding" `Quick test_json_escapes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log-bucket boundaries" `Quick test_metrics_bucket_boundaries;
          Alcotest.test_case "multi-shard merge" `Quick test_metrics_multi_shard_merge;
          Alcotest.test_case "register after shard" `Quick test_metrics_register_after_shard;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
        ] );
      ( "span",
        [
          Alcotest.test_case "balance" `Quick test_span_balance;
          Alcotest.test_case "chrome json" `Quick test_span_chrome_json;
          Alcotest.test_case "summary" `Quick test_span_summary;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus + json" `Quick test_export_prometheus_and_json ] );
      ( "engine",
        [
          Alcotest.test_case "obs off is byte-identical" `Quick
            test_engine_obs_off_is_byte_identical;
          Alcotest.test_case "counters reconcile with result" `Quick test_engine_obs_reconciles;
          Alcotest.test_case "trace parses and balances per domain" `Quick
            test_engine_obs_trace_balanced;
          Alcotest.test_case "spinlock wait observed per probe" `Quick
            test_engine_obs_spinlock_wait;
        ] );
      ( "build",
        [
          Alcotest.test_case "build spans and counters" `Quick test_build_obs_spans_and_counters;
          Alcotest.test_case "build then serve shares a handle" `Quick
            test_build_then_serve_shared_handle;
        ] );
    ]
