(* Tier-1 tests for the observability layer: the JSON codec, the sharded
   metrics registry (log-bucket boundaries, multi-shard merge, growth on
   late registration), span balance and Chrome-trace export, and the
   acceptance criteria for the instrumented engine — telemetry off means
   a byte-identical result, telemetry on reconciles exactly with the
   engine's own probe accounting. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Keyset = Lc_workload.Keyset
module Engine = Lc_parallel.Engine
module Json = Lc_obs.Json
module Metrics = Lc_obs.Metrics
module Span = Lc_obs.Span
module Export = Lc_obs.Export
module Obs = Lc_obs.Obs
module Heavy = Lc_obs.Heavy
module Window = Lc_obs.Window
module Http = Lc_obs.Http

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Static serving through the unified entry point. *)
let run_serve ?cost ?obs ~domains ~queries_per_domain ~seed inst qdist =
  (Engine.run
     (Engine.Config.make ?cost ?obs ~domains ~seed ())
     (Engine.Static { inst; qdist; queries_per_domain }))
    .Engine.result

let run_monitored ~monitor ~domains ~queries_per_domain ~seed inst qdist =
  Engine.run
    (Engine.Config.make ~monitor ~domains ~seed ())
    (Engine.Static { inst; qdist; queries_per_domain })

let universe = 1 lsl 18
let n = 256

let lc_fixture seed =
  let rng = Rng.create seed in
  let keys = Keyset.random rng ~universe ~n in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  (keys, Lc_core.Dictionary.instance dict)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("nested", Json.Obj [ ("s", Json.String "quote \" backslash \\ newline \n tab \t") ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("neg", Json.Int (-7));
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok doc' -> checkb "round-trip preserves the document" true (doc = doc')

let test_json_numbers () =
  (match Json.parse "[0, -12, 3.25, 1e3, 2E-2]" with
  | Ok (Json.List [ Json.Int 0; Json.Int (-12); Json.Float f1; Json.Float f2; Json.Float f3 ])
    ->
    checkb "3.25 exact" true (f1 = 3.25);
    checkb "1e3 exact" true (f2 = 1000.0);
    checkb "2E-2 exact" true (f3 = 0.02)
  | Ok _ -> Alcotest.fail "wrong shape for number list"
  | Error e -> Alcotest.fail e);
  checkb "int stays Int through print" true (Json.to_string (Json.Int 123) = "123")

let test_json_rejects () =
  let bad s = checkb (Printf.sprintf "rejects %S" s) true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,]";
  bad "\"unterminated";
  bad "truu";
  bad "{\"a\":1} trailing";
  bad "{'single':1}";
  bad "[1 2]"

let test_json_escapes () =
  match Json.parse {|"aA\n\"b\\"|} with
  | Ok (Json.String s) -> checks "escape decoding" "aA\n\"b\\" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

let test_json_strict_rejects_nonfinite () =
  (match Json.to_string_strict (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float Float.nan ]) ]) with
  | Error { Json.path; value } ->
    checks "path pinpoints the NaN" "$.a[1]" path;
    checkb "offending value reported" true (Float.is_nan value)
  | Ok _ -> Alcotest.fail "NaN was encoded");
  (match Json.to_string_strict (Json.Float Float.infinity) with
  | Error { Json.path; _ } -> checks "root-level path" "$" path
  | Ok _ -> Alcotest.fail "infinity was encoded");
  let doc = Json.Obj [ ("x", Json.Float 1.5); ("y", Json.List [ Json.Float (-0.0) ]) ] in
  match Json.to_string_strict doc with
  | Ok s -> checks "clean documents match the lenient writer" (Json.to_string doc) s
  | Error _ -> Alcotest.fail "finite document rejected"

let test_json_float_spellings () =
  let roundtrips f =
    match Json.parse (Json.to_string (Json.Float f)) with
    | Ok (Json.Float g) -> g = f
    | Ok (Json.Int i) -> float_of_int i = f
    | _ -> false
  in
  List.iter
    (fun f -> checkb (Printf.sprintf "%h round-trips" f) true (roundtrips f))
    [ 1e308; 5e-324; 1.0e-7; 3.141592653589793; 1e22; -1e22; 0.1; 1234567890.123 ];
  checks "negative zero spelling" "-0.0" (Json.to_string (Json.Float (-0.0)));
  match Json.parse "-0.0" with
  | Ok (Json.Float g) -> checkb "negative zero keeps its sign" true (1.0 /. g < 0.0)
  | _ -> Alcotest.fail "-0.0 did not parse as a float"

let prop_float_roundtrip =
  QCheck.Test.make ~name:"finite floats round-trip exactly through JSON" ~count:1000
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> g = f
      | Ok (Json.Int i) -> float_of_int i = f
      | _ -> false)

let prop_float_exponent_forms =
  (* QCheck.float rarely strays far from magnitude 1; build m * 10^e
     directly so both the %.12g fast path and the %.17g fallback see
     subnormals, huge magnitudes and awkward mantissas. *)
  QCheck.Test.make ~name:"m * 10^e round-trips across the exponent range" ~count:500
    QCheck.(pair (int_range (-1_000_000) 1_000_000) (int_range (-320) 300))
    (fun (m, e) ->
      let f = float_of_int m *. (10.0 ** float_of_int e) in
      QCheck.assume (Float.is_finite f);
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> g = f
      | Ok (Json.Int i) -> float_of_int i = f
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_bucket_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  let sh = Metrics.shard m ~domain:0 in
  List.iter (fun v -> Metrics.observe sh h v) [ 0; 1; 2; 3; 4; 7; 8 ];
  let snap = Metrics.snapshot m in
  match Metrics.Snapshot.find_hist snap "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hist ->
    (* 0 -> bucket upper 0; 1 -> 1; 2,3 -> 3; 4,7 -> 7; 8 -> 15. *)
    Alcotest.(check (array (pair int int)))
      "log-bucket boundaries at powers of two"
      [| (0, 1); (1, 1); (3, 2); (7, 2); (15, 1) |]
      hist.buckets;
    checki "count" 7 hist.count;
    checki "sum" 25 hist.sum;
    checki "max" 8 hist.max_value

let test_metrics_multi_shard_merge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m "h" in
  let sh0 = Metrics.shard m ~domain:0 in
  let sh1 = Metrics.shard m ~domain:1 in
  Metrics.incr sh0 c 3;
  Metrics.incr sh1 c 4;
  Metrics.set_gauge sh0 g 1.5;
  Metrics.set_gauge sh1 g 2.5;
  Metrics.observe sh0 h 5;
  Metrics.observe sh1 h 5;
  Metrics.observe sh1 h 100;
  let snap = Metrics.snapshot m in
  checki "counters sum across shards" 7
    (Option.get (Metrics.Snapshot.counter_value snap "c"));
  checkb "gauges sum across shards" true
    (Option.get (Metrics.Snapshot.gauge_value snap "g") = 4.0);
  let hist = Option.get (Metrics.Snapshot.find_hist snap "h") in
  checki "histogram count merges" 3 hist.count;
  checki "histogram sum merges" 110 hist.sum;
  checki "same-bucket observations merge" 2
    (snd (Array.get hist.buckets 0))

let test_metrics_register_after_shard () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "first" in
  let sh = Metrics.shard m ~domain:0 in
  Metrics.incr sh c1 1;
  (* Registering after the shard exists must grow its storage. *)
  let c2 = Metrics.counter m "second" in
  let h = Metrics.histogram m "late_hist" in
  Metrics.incr sh c2 9;
  Metrics.observe sh h 2;
  let snap = Metrics.snapshot m in
  checki "pre-existing counter intact" 1
    (Option.get (Metrics.Snapshot.counter_value snap "first"));
  checki "late counter recorded" 9
    (Option.get (Metrics.Snapshot.counter_value snap "second"));
  checki "late histogram recorded" 1
    (Option.get (Metrics.Snapshot.find_hist snap "late_hist")).count;
  checkb "same name returns same metric" true (Metrics.counter m "first" = c1);
  checkb "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "first" : Metrics.gauge);
       false
     with Invalid_argument _ -> true)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  let sh = Metrics.shard m ~domain:0 in
  for _ = 1 to 1000 do
    Metrics.observe sh h 100
  done;
  let hist = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "h") in
  let p50 = Metrics.Snapshot.quantile hist 0.5 in
  (* All mass in bucket [64, 127], clamped at the exact max. *)
  checkb "p50 inside the mass bucket" true (p50 >= 64.0 && p50 <= 100.0);
  checkb "p100 clamps to exact max" true (Metrics.Snapshot.quantile hist 1.0 = 100.0);
  checkb "mean exact" true (Metrics.Snapshot.mean hist = 100.0);
  let empty = Metrics.histogram m "empty" in
  ignore (Metrics.shard m ~domain:0);
  ignore empty;
  let e = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "empty") in
  checkb "empty quantile is 0" true (Metrics.Snapshot.quantile e 0.5 = 0.0)

(* ------------------------------------------------------------------ *)
(* Span                                                                 *)
(* ------------------------------------------------------------------ *)

let test_span_balance () =
  let s = Span.create () in
  let tl = Span.timeline s ~tid:0 in
  Span.with_span tl "outer" (fun () ->
      Span.with_span tl "inner" (fun () -> Span.instant tl "mark"));
  checkb "balanced after with_span nesting" true (Span.check_balanced s = Ok ());
  Span.begin_span tl "dangling";
  checkb "open span detected" true (Result.is_error (Span.check_balanced s));
  Span.end_span tl;
  checkb "balanced again" true (Span.check_balanced s = Ok ());
  checkb "end without begin raises" true
    (try
       Span.end_span tl;
       false
     with Invalid_argument _ -> true)

let test_span_chrome_json () =
  let s = Span.create () in
  let tl0 = Span.timeline s ~tid:0 in
  let tl1 = Span.timeline s ~tid:1 in
  Span.with_span tl0 "alpha" (fun () -> Span.with_span tl0 "beta" (fun () -> ()));
  Span.with_span tl1 "gamma" (fun () -> Span.instant tl1 "tick");
  match Json.parse (Span.to_chrome_json s) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    let events = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
    checki "3 spans x 2 events + 1 instant" 7 (List.length events);
    List.iter
      (fun e ->
        checkb "every event has a name" true (Json.member "name" e <> None);
        checkb "every event has a ts" true (Json.member "ts" e <> None);
        checkb "ph is B/E/i" true
          (match Option.bind (Json.member "ph" e) Json.string_value with
          | Some ("B" | "E" | "i") -> true
          | _ -> false))
      events

let test_span_summary () =
  let s = Span.create () in
  let tl = Span.timeline s ~tid:3 in
  Span.with_span tl "work" (fun () ->
      Span.with_span tl "sub" (fun () -> ());
      Span.with_span tl "sub" (fun () -> ()));
  let text = Span.summary s in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "summary names the timeline" true (contains "tid 3");
  checkb "summary lists the parent" true (contains "work");
  checkb "summary aggregates repeated children" true (contains "2 calls")

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let test_export_prometheus_and_json () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"a counter" "dotted.name_total" in
  let h = Metrics.histogram m "lat" in
  let sh = Metrics.shard m ~domain:0 in
  Metrics.incr sh c 5;
  Metrics.observe sh h 3;
  Metrics.observe sh h 200;
  let snap = Metrics.snapshot m in
  let prom = Export.prometheus snap in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length prom
      && (String.sub prom i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "counter exposed with sanitized name" true (has "dotted_name_total 5");
  checkb "TYPE line present" true (has "# TYPE dotted_name_total counter");
  checkb "histogram cumulative +Inf bucket" true (has "lat_bucket{le=\"+Inf\"} 2");
  checkb "histogram sum" true (has "lat_sum 203");
  match Json.parse (Export.json_snapshot snap) with
  | Error e -> Alcotest.failf "json snapshot does not parse: %s" e
  | Ok doc ->
    let counters = Option.get (Json.member "counters" doc) in
    checkb "counter value in json" true
      (Option.bind (Json.member "dotted.name_total" counters) Json.int_value = Some 5)

let test_export_help_escaping () =
  checks "escape_help maps backslash and newline"
    "line one\\nline \\\\two" (Export.escape_help "line one\nline \\two");
  let m = Metrics.create () in
  let help = "first line\nsecond \\ line" in
  ignore (Metrics.counter m ~help "multi_line_total" : Metrics.counter);
  ignore (Metrics.shard m ~domain:0 : Metrics.shard);
  let prom = Export.prometheus (Metrics.snapshot m) in
  let lines = String.split_on_char '\n' prom in
  let help_lines =
    List.filter
      (fun l -> String.length l >= 6 && String.sub l 0 6 = "# HELP")
      lines
  in
  checki "one HELP line despite the embedded newline" 1 (List.length help_lines);
  let line = List.hd help_lines in
  checks "HELP line carries the escaped text"
    "# HELP multi_line_total first line\\nsecond \\\\ line" line;
  (* Round-trip: un-escaping the exposed help recovers the original. *)
  let unescape s =
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if s.[!i] = '\\' && !i + 1 < String.length s then begin
        (match s.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        i := !i + 2
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let prefix = "# HELP multi_line_total " in
  let exposed = String.sub line (String.length prefix) (String.length line - String.length prefix) in
  checks "unescape round-trips" help (unescape exposed)

let test_export_write_file_atomic () =
  let dir = Filename.temp_file "lc_obs_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "doc.prom" in
  let read p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Export.write_file ~path "first version\n";
  checks "initial write lands" "first version\n" (read path);
  Export.write_file ~path "second version\n";
  checks "rewrite replaces the document" "second version\n" (read path);
  let leftovers =
    Array.to_list (Sys.readdir dir) |> List.filter (fun f -> f <> "doc.prom")
  in
  checkb "no temp files left behind" true (leftovers = []);
  Sys.remove path;
  Unix.rmdir dir

(* metrics.mli promises bucket b covers [2^(b-1), 2^b - 1]: both ends of
   every range must land in the same bucket, whose upper edge is
   2^b - 1. *)
let prop_bucket_boundaries =
  QCheck.Test.make ~name:"observe places 2^(b-1) and 2^b - 1 in bucket b" ~count:100
    QCheck.(int_range 1 30)
    (fun b ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      let sh = Metrics.shard m ~domain:0 in
      Metrics.observe sh h (1 lsl (b - 1));
      Metrics.observe sh h ((1 lsl b) - 1);
      let hist = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "h") in
      hist.buckets = [| ((1 lsl b) - 1, 2) |])

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q and bounded by max_value" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 50) (int_range 0 1_000_000_000))
        (pair (int_range 0 1000) (int_range 0 1000)))
    (fun (values, (a, b)) ->
      let q1 = float_of_int (min a b) /. 1000.0 in
      let q2 = float_of_int (max a b) /. 1000.0 in
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      let sh = Metrics.shard m ~domain:0 in
      List.iter (fun v -> Metrics.observe sh h v) values;
      let hist = Option.get (Metrics.Snapshot.find_hist (Metrics.snapshot m) "h") in
      let v1 = Metrics.Snapshot.quantile hist q1 in
      let v2 = Metrics.Snapshot.quantile hist q2 in
      v1 <= v2 && v2 <= float_of_int hist.max_value)

(* ------------------------------------------------------------------ *)
(* Heavy (Space-Saving sketch)                                          *)
(* ------------------------------------------------------------------ *)

let test_heavy_exact_below_capacity () =
  let s = Heavy.create ~k:8 in
  List.iter (fun x -> Heavy.observe s x) [ 1; 2; 1; 3; 1; 2 ];
  checki "total counts observations" 6 (Heavy.total s);
  checki "below capacity the floor is 0" 0 (Heavy.min_count s);
  match Heavy.entries s with
  | { Heavy.item = 1; count = 3; err = 0 } :: rest ->
    checkb "remaining entries exact" true
      (List.for_all (fun (e : Heavy.entry) -> e.err = 0) rest)
  | _ -> Alcotest.fail "dominant item not first or not exact"

let test_heavy_tracks_heavy_hitter () =
  let s = Heavy.create ~k:4 in
  let rng = Rng.create 99 in
  (* One item at 40%, noise spread over 1000 others: far above total/k. *)
  for _ = 1 to 5_000 do
    if Rng.int rng 10 < 4 then Heavy.observe s 7777
    else Heavy.observe s (Rng.int rng 1000)
  done;
  let m = Heavy.merge [ s ] ~k:4 in
  (match List.find_opt (fun (e : Heavy.entry) -> e.item = 7777) m.Heavy.top with
  | None -> Alcotest.fail "heavy hitter not tracked"
  | Some e ->
    checkb "estimate brackets truth from above" true (e.count >= 2000 - 300);
    checkb "err below the merge bound" true (e.err <= m.Heavy.error_bound));
  checkb "error bound within total/k" true
    (m.Heavy.error_bound <= m.Heavy.total_observed / 4);
  let g = Option.get (Heavy.max_guaranteed m) in
  checkb "guaranteed max is the heavy hitter" true (g.item = 7777)

let test_heavy_merge_disjoint () =
  let mk xs =
    let s = Heavy.create ~k:4 in
    List.iter (fun x -> Heavy.observe s x) xs;
    s
  in
  (* Two under-capacity sketches: the merge must be exact. *)
  let a = mk [ 1; 1; 2 ] in
  let b = mk [ 1; 3; 3; 3 ] in
  let m = Heavy.merge [ a; b ] ~k:4 in
  checki "totals add" 7 m.Heavy.total_observed;
  checki "exact merge has no error" 0 m.Heavy.error_bound;
  let find i = List.find (fun (e : Heavy.entry) -> e.item = i) m.Heavy.top in
  checki "cross-sketch counts sum" 3 (find 1).count;
  checki "single-sketch counts survive" 3 (find 3).count;
  checki "max_estimate is the top count" 3 (Heavy.max_estimate m)

let test_heavy_copy_into () =
  let s = Heavy.create ~k:3 in
  List.iter (fun x -> Heavy.observe s x) [ 5; 5; 6; 7; 8 ];
  let d = Heavy.create ~k:3 in
  Heavy.copy_into s d;
  checkb "copy reproduces entries" true (Heavy.entries s = Heavy.entries d);
  checki "copy reproduces total" (Heavy.total s) (Heavy.total d);
  Heavy.observe s 5;
  checkb "copy is independent of the source" true (Heavy.total d = 5);
  checkb "k mismatch rejected" true
    (try
       Heavy.copy_into s (Heavy.create ~k:4);
       false
     with Invalid_argument _ -> true)

let test_heavy_merge_edge_cases () =
  (* Merging nothing is a well-defined empty sketch. *)
  let z = Heavy.merge [] ~k:4 in
  checki "empty merge total" 0 z.Heavy.total_observed;
  checkb "empty merge has no entries" true (z.Heavy.top = []);
  checki "empty merge error bound" 0 z.Heavy.error_bound;
  checkb "no guaranteed max without entries" true (Heavy.max_guaranteed z = None);
  (* A sketch that observed nothing merges as a no-op. *)
  let m0 = Heavy.merge [ Heavy.create ~k:4 ] ~k:4 in
  checkb "empty sketch contributes nothing" true (m0.Heavy.top = []);
  checkb "still no guaranteed max" true (Heavy.max_guaranteed m0 = None);
  (* A single entry stays exact through the merge. *)
  let s = Heavy.create ~k:4 in
  for _ = 1 to 3 do
    Heavy.observe s 42
  done;
  let m1 = Heavy.merge [ s ] ~k:4 in
  (match m1.Heavy.top with
  | [ { Heavy.item = 42; count = 3; err = 0 } ] -> ()
  | _ -> Alcotest.fail "single entry not exact after merge");
  (* Merging a sketch with itself counts its stream twice — the
     postmortem capture path must not deduplicate by identity. *)
  let m2 = Heavy.merge [ s; s ] ~k:4 in
  checki "self-merge doubles the total" 6 m2.Heavy.total_observed;
  match m2.Heavy.top with
  | [ { Heavy.item = 42; count = 6; err = 0 } ] -> ()
  | _ -> Alcotest.fail "self-merge did not double the count"

(* ------------------------------------------------------------------ *)
(* Window                                                               *)
(* ------------------------------------------------------------------ *)

let window_fixture ?(ring = 4) () =
  let m = Metrics.create () in
  let q = Metrics.counter m "q_total" in
  let p = Metrics.counter m "p_total" in
  let h = Metrics.histogram m "lat_ns" in
  let sh = Metrics.shard m ~domain:0 in
  let w =
    Window.create m
      {
        Window.ring_capacity = ring;
        queries_counter = "q_total";
        probes_counter = "p_total";
        latency_histogram = "lat_ns";
        space = 100;
        max_probes = 4;
        top_k = 4;
        alert_factor = 8.0;
      }
      ~publishers:1
  in
  (m, q, p, h, sh, w)

let test_window_tick_deltas () =
  let _, q, p, h, sh, w = window_fixture () in
  let sketch = Heavy.create ~k:4 in
  let pub = Window.publisher w 0 in
  Metrics.incr sh q 10;
  Metrics.incr sh p 40;
  Metrics.observe sh h 100;
  Heavy.observe sketch 3;
  Window.publish pub sh sketch;
  let e1 = Window.tick w in
  checki "first window sees the whole stream" 10 e1.Window.queries;
  checki "probes delta" 40 e1.Window.probes;
  checki "cumulative totals" 10 e1.Window.cum_queries;
  checkb "p50 from the windowed histogram" true (e1.Window.p50_ns > 0.0);
  (* Nothing new published: the next window must be empty, while the
     cumulative side holds. *)
  let e2 = Window.tick w in
  checki "quiet window has zero queries" 0 e2.Window.queries;
  checkb "quiet window has zero quantiles" true (e2.Window.p50_ns = 0.0);
  checki "cumulative unchanged" 10 e2.Window.cum_queries;
  (* More work, published again: only the delta shows. *)
  Metrics.incr sh q 5;
  Metrics.incr sh p 20;
  Window.publish pub sh sketch;
  let e3 = Window.tick w in
  checki "delta only" 5 e3.Window.queries;
  checki "cumulative advances" 15 e3.Window.cum_queries;
  checki "windows numbered in order" 2 e3.Window.index;
  checki "ring holds all three" 3 (List.length (Window.entries w));
  checkb "live snapshot sees published counters" true
    (Metrics.Snapshot.counter_value (Window.live_snapshot w) "q_total" = Some 15)

let test_window_ring_eviction () =
  let _, q, _, _, sh, w = window_fixture ~ring:2 () in
  let sketch = Heavy.create ~k:4 in
  let pub = Window.publisher w 0 in
  for i = 1 to 5 do
    Metrics.incr sh q i;
    Window.publish pub sh sketch;
    ignore (Window.tick w : Window.entry)
  done;
  checki "total windows counts evictions" 5 (Window.total_windows w);
  match Window.entries w with
  | [ e3; e4 ] ->
    checki "oldest retained window" 3 e3.Window.index;
    checki "latest window" 4 e4.Window.index;
    checkb "last agrees" true (Window.last w = Some e4)
  | es -> Alcotest.failf "expected 2 retained windows, got %d" (List.length es)

let test_window_alert_and_gauges () =
  let _, q, p, _, sh, w = window_fixture () in
  let sketch = Heavy.create ~k:4 in
  let pub = Window.publisher w 0 in
  (* 100 queries, every probe on cell 0: flat = 100*4/100 = 4, guaranteed
     tally 400 -> ratio 100, far over the factor of 8. *)
  Metrics.incr sh q 100;
  Metrics.incr sh p 400;
  for _ = 1 to 400 do
    Heavy.observe sketch 0
  done;
  Window.publish pub sh sketch;
  let e = Window.tick w in
  checkb "ratio reflects the funnel cell" true (e.Window.hotspot_ratio >= 99.0);
  checkb "alert fires" true e.Window.alert;
  checkb "alert state visible" true (Window.alert_active w);
  checki "fired total" 1 (Window.alert_fired_total w);
  let g = Window.prometheus_gauges w in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length g
      && (String.sub g i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "hotspot gauge exposed" true (has "engine_hotspot_ratio 100");
  checkb "alert gauge exposed" true (has "engine_hotspot_alert 1");
  checkb "window qps gauge exposed" true (has "engine_window_qps ")

let test_window_alert_hysteresis () =
  let _, q, p, _, sh, w = window_fixture () in
  let sketch = Heavy.create ~k:4 in
  let pub = Window.publisher w 0 in
  (* Phase 1: funnel every probe through cell 0. Guaranteed tally 400
     against a flat bound of 100 * 4 / 100 = 4 -> ratio 100, far over
     the factor of 8: the alert must raise. *)
  Metrics.incr sh q 100;
  Metrics.incr sh p 400;
  for _ = 1 to 400 do
    Heavy.observe sketch 0
  done;
  Window.publish pub sh sketch;
  let e1 = Window.tick w in
  checkb "alert raised on the funnel" true e1.Window.alert;
  checkb "alert active" true (Window.alert_active w);
  checki "firing run starts" 1 (Window.alert_firing_run w);
  checki "one raise so far" 1 (Window.alert_fired_total w);
  (* Phase 2: drown the sketch in uniform churn. With k = 4 and 100
     rotating cells every Space-Saving entry decays to count - err = 1,
     while the cumulative flat bound grows to ~404 — the ratio collapses
     and the alert must clear, not latch. *)
  Metrics.incr sh q 10_000;
  Metrics.incr sh p 40_000;
  for i = 1 to 40_000 do
    Heavy.observe sketch (1 + (i mod 100))
  done;
  Window.publish pub sh sketch;
  let e2 = Window.tick w in
  checkb "ratio collapses under churn" true (e2.Window.hotspot_ratio <= 8.0);
  checkb "alert cleared" true (not e2.Window.alert);
  checkb "alert state cleared" true (not (Window.alert_active w));
  checki "firing run reset" 0 (Window.alert_firing_run w);
  checki "fired total remembers the raise edge" 1 (Window.alert_fired_total w)

(* The windowed GC view: a recorder created with a gc_config diffs the
   named allocation counters per window exactly like the query counters,
   derives alloc/query from the same tick, and reports [None] without a
   gc_config (the pre-observatory shape, pinned above by every other
   window test using the plain fixture). *)
let test_window_gc_view () =
  let m = Metrics.create () in
  let q = Metrics.counter m "q_total" in
  let p = Metrics.counter m "p_total" in
  let _h = Metrics.histogram m "lat_ns" in
  let gm = Metrics.counter m "gc_minor_w" in
  let gp = Metrics.counter m "gc_promoted_w" in
  let gmaj = Metrics.counter m "gc_major_w" in
  let sh = Metrics.shard m ~domain:0 in
  let w =
    Window.create m
      ~gc:
        {
          Window.minor_words_counter = "gc_minor_w";
          promoted_words_counter = "gc_promoted_w";
          major_words_counter = "gc_major_w";
        }
      {
        Window.ring_capacity = 4;
        queries_counter = "q_total";
        probes_counter = "p_total";
        latency_histogram = "lat_ns";
        space = 100;
        max_probes = 4;
        top_k = 4;
        alert_factor = 8.0;
      }
      ~publishers:1
  in
  let sketch = Heavy.create ~k:4 in
  let pub = Window.publisher w 0 in
  Metrics.incr sh q 10;
  Metrics.incr sh p 40;
  Metrics.incr sh gm 1_000;
  Metrics.incr sh gp 64;
  Metrics.incr sh gmaj 8;
  Window.publish pub sh sketch;
  let e1 = Window.tick w in
  (match e1.Window.gc with
  | None -> Alcotest.fail "gc_config present but window has no GC view"
  | Some g ->
    checki "minor words delta" 1_000 g.Window.g_minor_words;
    checki "promoted words delta" 64 g.Window.g_promoted_words;
    checki "major words delta" 8 g.Window.g_major_words;
    checkb "alloc per query = minor/queries" true
      (Float.abs (g.Window.alloc_per_query -. 100.0) < 1e-9);
    checki "cumulative minor words" 1_000 g.Window.cum_minor_words;
    checkb "collection counts are sane" true
      (g.Window.g_minor_collections >= 0 && g.Window.g_major_collections >= 0);
    checkb "heap gauge populated" true (g.Window.g_heap_words > 0));
  (* Second window: only the new allocation shows, cumulative holds;
     a window with zero queries reports alloc_per_query 0, not a NaN. *)
  Metrics.incr sh gm 500;
  Window.publish pub sh sketch;
  let e2 = Window.tick w in
  (match e2.Window.gc with
  | None -> Alcotest.fail "GC view must be present on every window"
  | Some g ->
    checki "second window delta only" 500 g.Window.g_minor_words;
    checki "cumulative advances" 1_500 g.Window.cum_minor_words;
    checkb "zero-query window divides safely" true (g.Window.alloc_per_query = 0.0));
  (* The plain fixture (no gc_config) keeps the pre-observatory shape. *)
  let _, q', _, _, sh', w' = window_fixture () in
  let pub' = Window.publisher w' 0 in
  Metrics.incr sh' q' 1;
  Window.publish pub' sh' (Heavy.create ~k:4);
  checkb "no gc_config, no GC view" true ((Window.tick w').Window.gc = None)

(* ------------------------------------------------------------------ *)
(* Http                                                                 *)
(* ------------------------------------------------------------------ *)

let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" target in
      ignore (Unix.write_substring sock req 0 (String.length req) : int);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let k = Unix.read sock chunk 0 (Bytes.length chunk) in
        if k > 0 then begin
          Buffer.add_subbytes buf chunk 0 k;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string code
        | _ -> -1
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let s = find 0 in
        String.sub raw s (String.length raw - s)
      in
      (status, body))

let test_http_routes () =
  let hits = ref 0 in
  let server =
    Http.start ~port:0
      [
        ( "/metrics",
          fun () ->
            incr hits;
            Http.text "metric 1\n" );
        ("/boom", fun () -> failwith "handler exploded");
      ]
  in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      let status, body = http_get port "/metrics" in
      checki "200 on a routed path" 200 status;
      checks "body served" "metric 1\n" body;
      let status, _ = http_get port "/metrics?refresh=1" in
      checki "query string stripped before matching" 200 status;
      let status, _ = http_get port "/nope" in
      checki "404 on unknown path" 404 status;
      let status, _ = http_get port "/boom" in
      checki "500 on a raising handler" 500 status;
      checki "handler ran once per routed request" 2 !hits);
  (* Stop is idempotent and the port is released. *)
  Http.stop server;
  checkb "connection refused after stop" true
    (try
       ignore (http_get (Http.port server) "/metrics");
       false
     with Unix.Unix_error (_, _, _) -> true)

(* ------------------------------------------------------------------ *)
(* Engine acceptance                                                    *)
(* ------------------------------------------------------------------ *)

(* Wall-clock fields vary run to run; everything else must not. *)
let normalized (r : Engine.result) = { r with Engine.seconds = 0.0; throughput = 0.0 }

let marshal r = Marshal.to_string (normalized r) []

let test_engine_obs_off_is_byte_identical () =
  let keys, inst = lc_fixture 21 in
  let keys_dist = Qdist.uniform ~name:"pos" keys in
  let serve ?obs () =
    Engine.run
      (Engine.Config.make ?obs ~domains:2 ~seed:33 ())
      (Engine.Static { inst; qdist = keys_dist; queries_per_domain = 600 })
  in
  let w1 = serve () in
  let w2 = serve () in
  checks "two uninstrumented runs marshal identically" (marshal w1.Engine.result)
    (marshal w2.Engine.result);
  let w3 = serve ~obs:(Obs.create ()) () in
  checks "telemetry does not perturb the result record" (marshal w1.Engine.result)
    (marshal w3.Engine.result);
  (* Without a monitor no window machinery engages. *)
  checkb "no windows without a monitor" true
    (w1.Engine.windows = [] && w1.Engine.cells = None && w1.Engine.alert_windows = 0)

let test_engine_obs_reconciles () =
  let keys, inst = lc_fixture 22 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r = run_serve ~obs ~domains:3 ~queries_per_domain:700 ~seed:5 inst qd in
  let snap = Obs.snapshot obs in
  checki "engine_probes_total = result.total_probes" r.Engine.total_probes
    (Option.get (Metrics.Snapshot.counter_value snap "engine_probes_total"));
  checki "engine_queries_total = result.queries" r.Engine.queries
    (Option.get (Metrics.Snapshot.counter_value snap "engine_queries_total"));
  let lat = Option.get (Metrics.Snapshot.find_hist snap "engine_query_latency_ns") in
  checki "one latency observation per query" r.Engine.queries lat.count;
  checkb "domains gauge" true
    (Metrics.Snapshot.gauge_value snap "engine_domains" = Some 3.0)

let test_engine_obs_trace_balanced () =
  let keys, inst = lc_fixture 23 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r = run_serve ~obs ~domains:3 ~queries_per_domain:300 ~seed:6 inst qd in
  checki "sanity: all queries served" 900 r.Engine.queries;
  checkb "collector reports balance" true (Span.check_balanced obs.Obs.spans = Ok ());
  (* Independently re-check balance from the emitted JSON itself. *)
  match Json.parse (Span.to_chrome_json obs.Obs.spans) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok doc ->
    let events = Json.to_list (Option.get (Json.member "traceEvents" doc)) in
    checkb "trace has events" true (List.length events > 0);
    let depth : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let tids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let tid = Option.get (Option.bind (Json.member "tid" e) Json.int_value) in
        Hashtbl.replace tids tid ();
        let d =
          match Hashtbl.find_opt depth tid with
          | Some d -> d
          | None ->
            let d = ref 0 in
            Hashtbl.add depth tid d;
            d
        in
        match Option.bind (Json.member "ph" e) Json.string_value with
        | Some "B" -> incr d
        | Some "E" ->
          decr d;
          checkb "no E before B" true (!d >= 0)
        | _ -> ())
      events;
    Hashtbl.iter
      (fun tid d -> checki (Printf.sprintf "tid %d ends at depth 0" tid) 0 !d)
      depth;
    (* Orchestrator + one timeline per worker domain. *)
    checki "timelines = domains + 1" 4 (Hashtbl.length tids)

let test_engine_obs_spinlock_wait () =
  let keys, inst = lc_fixture 24 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Obs.create () in
  let r =
    run_serve ~cost:(Engine.Spinlock { hold = 2 }) ~obs ~domains:2 ~queries_per_domain:400
      ~seed:7 inst qd
  in
  let snap = Obs.snapshot obs in
  let wait = Option.get (Metrics.Snapshot.find_hist snap "engine_spinlock_wait_ns") in
  checki "one wait observation per probe" r.Engine.total_probes wait.count;
  let free = run_serve ~domains:2 ~queries_per_domain:400 ~seed:7 inst qd in
  checki "same tallies as the free uninstrumented run" free.Engine.total_probes
    r.Engine.total_probes

(* ------------------------------------------------------------------ *)
(* Monitored serving (serve_windowed + Monitor + live scrape)           *)
(* ------------------------------------------------------------------ *)

let fks_norepl_fixture seed =
  let rng = Rng.create seed in
  let keys = Keyset.random rng ~universe ~n in
  (keys, Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys))

(* Satellite acceptance: on a completed monitored run against the
   deliberately hot structure, the streaming view must agree with the
   exact counters — windowed queries reconcile, the true hottest cell is
   tracked with its tally bracketed, the windowed ratio is within the
   sketch error bound of the exact one, and the alert fires. *)
let test_windowed_sketch_agrees_with_exact () =
  let keys, inst = fks_norepl_fixture 41 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let mon = Engine.Monitor.create ~interval_s:0.02 ~publish_period:64 ~domains:2 inst in
  let w =
    run_monitored ~monitor:mon ~domains:2 ~queries_per_domain:20_000 ~seed:9 inst qd
  in
  let r = w.Engine.result in
  let sum_q =
    List.fold_left (fun a (e : Window.entry) -> a + e.Window.queries) 0 w.Engine.windows
  in
  checki "windowed queries sum to the engine total" r.Engine.queries sum_q;
  let cells = Option.get w.Engine.cells in
  (match
     List.find_opt (fun (e : Heavy.entry) -> e.item = r.Engine.hottest_cell) cells.Heavy.top
   with
  | None -> Alcotest.fail "true hottest cell not in the merged top-k"
  | Some e ->
    checkb "tally bracketed: count - err <= true <= count" true
      (e.count - e.err <= r.Engine.hottest_count && r.Engine.hottest_count <= e.count));
  let final = List.nth w.Engine.windows (List.length w.Engine.windows - 1) in
  let exact = Engine.hotspot_ratio r in
  let sketched = final.Window.hotspot_ratio in
  checkb "sketched ratio never exceeds the exact one" true (sketched <= exact +. 1e-9);
  checkb "sketched ratio within the error bound of the exact one" true
    (exact -. sketched <= (float_of_int cells.Heavy.error_bound /. r.Engine.flat_bound) +. 1e-9);
  checkb "hot structure fires the alert" true (w.Engine.alert_windows > 0);
  checkb "final window flags the alert" true final.Window.alert

let test_windowed_quiet_on_low_contention () =
  let keys, inst = lc_fixture 42 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let mon = Engine.Monitor.create ~interval_s:0.02 ~publish_period:64 ~domains:2 inst in
  let w =
    run_monitored ~monitor:mon ~domains:2 ~queries_per_domain:8_000 ~seed:10 inst qd
  in
  let r = w.Engine.result in
  checkb "sanity: the exact ratio is itself small" true (Engine.hotspot_ratio r < 16.0);
  checki "alert stays silent on the Theorem 3 dictionary" 0 w.Engine.alert_windows;
  let sum_q =
    List.fold_left (fun a (e : Window.entry) -> a + e.Window.queries) 0 w.Engine.windows
  in
  checki "reconciliation holds here too" r.Engine.queries sum_q

(* The /metrics scrape during a run: valid exposition text, counters
   monotone across scrapes, per-window gauges present. A scraper domain
   hits the live endpoint while the workers serve. *)
let test_windowed_live_scrape_monotone () =
  let keys, inst = lc_fixture 43 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let mon = Engine.Monitor.create ~interval_s:0.02 ~publish_period:64 ~domains:2 inst in
  let server = Http.start ~port:0 (Engine.Monitor.routes mon) in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      let scraper =
        Domain.spawn (fun () ->
            List.init 8 (fun _ ->
                let status, body = http_get port "/metrics" in
                Unix.sleepf 0.03;
                (status, body)))
      in
      let w =
        run_monitored ~monitor:mon ~domains:2 ~queries_per_domain:30_000 ~seed:11 inst qd
      in
      let scrapes = Domain.join scraper in
      List.iter (fun (status, _) -> checki "every scrape answered 200" 200 status) scrapes;
      let counter_value name body =
        List.find_map
          (fun line ->
            let prefix = name ^ " " in
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              int_of_string_opt
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            else None)
          (String.split_on_char '\n' body)
      in
      let queries =
        List.map (fun (_, b) -> Option.value ~default:(-1) (counter_value "engine_queries_total" b)) scrapes
      in
      checkb "every scrape exposes engine_queries_total" true (List.for_all (fun q -> q >= 0) queries);
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      checkb "counter monotone across live scrapes" true (monotone queries);
      let _, last_body = List.nth scrapes (List.length scrapes - 1) in
      let has needle =
        let rec go i =
          i + String.length needle <= String.length last_body
          && (String.sub last_body i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      checkb "TYPE lines present (valid exposition text)" true
        (has "# TYPE engine_queries_total counter");
      checkb "per-window gauges appended" true (has "# TYPE engine_hotspot_ratio gauge");
      (* The final cumulative counter must match the completed run. *)
      let _, final_body = http_get port "/metrics" in
      checki "post-run scrape equals the result"
        w.Engine.result.Engine.queries
        (Option.get (counter_value "engine_queries_total" final_body));
      (* And the JSON routes stay parseable under load. *)
      let status, cells = http_get port "/cells.json" in
      checki "cells.json 200" 200 status;
      checkb "cells.json parses" true (Result.is_ok (Json.parse cells));
      let status, windows = http_get port "/windows.json" in
      checki "windows.json 200" 200 status;
      checkb "windows.json parses" true (Result.is_ok (Json.parse windows)))

(* The /updates.json route, both shapes. A dynamic run exposes the
   update-path observatory — schema-tagged, cumulative stats matching
   the outcome's update_stats, windowed u_cells summing to the run's
   cells_written. A static run behind the same monitor answers the
   same route with updates_seen = false and a null cumulative, so
   scrapers need no out-of-band knowledge of the workload kind. *)
let test_updates_json_route () =
  let module Epoch = Lc_dynamic.Epoch in
  let module Opstream = Lc_workload.Opstream in
  let get key j =
    match Json.member key j with
    | Some v -> v
    | None -> Alcotest.failf "updates.json missing %S" key
  in
  let geti key j = Option.get (Json.int_value (get key j)) in
  (* Dynamic: the observatory is live. *)
  let rng = Rng.create 61 in
  let keys = Keyset.random rng ~universe ~n in
  let epoch = Epoch.create rng ~universe () in
  Array.iter (Epoch.insert epoch) keys;
  Epoch.publish epoch;
  let snap0 = Epoch.current epoch in
  let domains = 2 in
  let ops =
    Opstream.generate
      ~mix:(Opstream.read_write_mix ~read_fraction:0.6)
      ~initial_pool:keys rng ~universe ~length:(domains * 2_000) ~working_set:(2 * n)
  in
  let mon =
    Engine.Monitor.create_for ~interval_s:0.02 ~domains ~space:(Epoch.space snap0)
      ~max_probes:(Epoch.max_probes snap0) ()
  in
  let server = Http.start ~port:0 (Engine.Monitor.routes mon) in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let o =
        Engine.run
          (Engine.Config.make ~monitor:mon ~domains ~seed:62 ())
          (Engine.Dynamic { epoch; ops; publish_every = 64 })
      in
      let u = Option.get o.Engine.updates in
      let status, body = http_get (Http.port server) "/updates.json" in
      checki "updates.json 200 on a dynamic run" 200 status;
      let j = Result.get_ok (Json.parse body) in
      checks "schema tag" Engine.Monitor.updates_schema_name
        (Option.get (Json.string_value (get "schema" j)));
      checki "schema version" Engine.Monitor.updates_schema_version (geti "version" j);
      checkb "updates_seen on a dynamic run" true
        (Option.get (Json.bool_value (get "updates_seen" j)));
      let cum = get "cumulative" j in
      checkb "cumulative present (not null)" true (cum <> Json.Null);
      checki "cumulative inserts = update_stats" u.Engine.inserts (geti "inserts" cum);
      checki "cumulative deletes = update_stats" u.Engine.deletes (geti "deletes" cum);
      (* update_stats.publications is the epoch structure's lifetime
         count (it includes the one preload publish); the scrape's
         counter is run-scoped. *)
      checki "cumulative publications = update_stats minus the preload"
        (u.Engine.publications - 1)
        (geti "publications" cum);
      checki "cumulative cells = update_stats" u.Engine.cells_written
        (geti "cells_written" cum);
      checki "retired pending zero at quiescence" 0 (geti "retired_pending" cum);
      let windows = Json.to_list (get "windows" j) in
      checkb "windowed update view non-empty" true (windows <> []);
      checki "windowed cells sum to the run's cells_written" u.Engine.cells_written
        (List.fold_left (fun a w -> a + geti "cells_written" w) 0 windows));
  (* Static: same route, absent semantics. *)
  let keys2, inst = lc_fixture 63 in
  let qd = Qdist.uniform ~name:"pos" keys2 in
  let mon2 = Engine.Monitor.create ~interval_s:0.02 ~domains:2 inst in
  let server2 = Http.start ~port:0 (Engine.Monitor.routes mon2) in
  Fun.protect
    ~finally:(fun () -> Http.stop server2)
    (fun () ->
      ignore (run_monitored ~monitor:mon2 ~domains:2 ~queries_per_domain:2_000 ~seed:64 inst qd);
      let status, body = http_get (Http.port server2) "/updates.json" in
      checki "updates.json 200 on a static run" 200 status;
      let j = Result.get_ok (Json.parse body) in
      checkb "updates_seen false on a static run" false
        (Option.get (Json.bool_value (get "updates_seen" j)));
      checkb "cumulative is null on a static run" true (get "cumulative" j = Json.Null);
      checki "no update windows on a static run" 0 (List.length (Json.to_list (get "windows" j))))

(* ------------------------------------------------------------------ *)
(* Build-stage telemetry                                                *)
(* ------------------------------------------------------------------ *)

let test_build_obs_spans_and_counters () =
  let rng = Rng.create 31 in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Obs.create () in
  let dict = Lc_core.Dictionary.build ~obs rng ~universe ~keys in
  checkb "build trace balanced" true (Span.check_balanced obs.Obs.spans = Ok ());
  let snap = Obs.snapshot obs in
  checki "trial counter matches the structure's own count"
    (Lc_core.Dictionary.build_trials dict)
    (Option.get (Metrics.Snapshot.counter_value snap "build_ps_trials_total"));
  let rejects =
    Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_g_total")
    + Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_group_total")
    + Option.get (Metrics.Snapshot.counter_value snap "build_ps_rejects_fks_total")
  in
  checki "rejects = trials - 1" (Lc_core.Dictionary.build_trials dict - 1) rejects;
  checkb "perfect-hash trials recorded" true
    (Option.get (Metrics.Snapshot.counter_value snap "build_perfect_trials_total") > 0);
  let text = Span.summary obs.Obs.spans in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun stage -> checkb (Printf.sprintf "summary names %s" stage) true (contains stage))
    [ "build"; "P(S)-sampling"; "layout-gbas"; "perfect-hashing"; "write-rows" ]

(* Build then serve on one handle: the profile subcommand's flow. Late
   engine registrations must not disturb the build-stage counters. *)
let test_build_then_serve_shared_handle () =
  let rng = Rng.create 32 in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Obs.create () in
  let dict = Lc_core.Dictionary.build ~obs rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let qd = Qdist.uniform ~name:"pos" keys in
  let r = run_serve ~obs ~domains:2 ~queries_per_domain:300 ~seed:8 inst qd in
  let snap = Obs.snapshot obs in
  checki "build trials survive engine registration"
    (Lc_core.Dictionary.build_trials dict)
    (Option.get (Metrics.Snapshot.counter_value snap "build_ps_trials_total"));
  checki "probe counter reconciles on the shared handle" r.Engine.total_probes
    (Option.get (Metrics.Snapshot.counter_value snap "engine_probes_total"));
  checkb "combined trace balanced" true (Span.check_balanced obs.Obs.spans = Ok ())

let () =
  Alcotest.run "lc_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "escape decoding" `Quick test_json_escapes;
          Alcotest.test_case "strict encode rejects non-finite" `Quick
            test_json_strict_rejects_nonfinite;
          Alcotest.test_case "float spellings" `Quick test_json_float_spellings;
        ] );
      ( "json properties",
        [
          QCheck_alcotest.to_alcotest prop_float_roundtrip;
          QCheck_alcotest.to_alcotest prop_float_exponent_forms;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log-bucket boundaries" `Quick test_metrics_bucket_boundaries;
          Alcotest.test_case "multi-shard merge" `Quick test_metrics_multi_shard_merge;
          Alcotest.test_case "register after shard" `Quick test_metrics_register_after_shard;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
        ] );
      ( "span",
        [
          Alcotest.test_case "balance" `Quick test_span_balance;
          Alcotest.test_case "chrome json" `Quick test_span_chrome_json;
          Alcotest.test_case "summary" `Quick test_span_summary;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus + json" `Quick test_export_prometheus_and_json;
          Alcotest.test_case "help escaping round-trips" `Quick test_export_help_escaping;
          Alcotest.test_case "write_file replaces atomically" `Quick
            test_export_write_file_atomic;
        ] );
      ( "metrics properties",
        [
          QCheck_alcotest.to_alcotest prop_bucket_boundaries;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
        ] );
      ( "heavy",
        [
          Alcotest.test_case "exact below capacity" `Quick test_heavy_exact_below_capacity;
          Alcotest.test_case "tracks a heavy hitter" `Quick test_heavy_tracks_heavy_hitter;
          Alcotest.test_case "merge of disjoint streams" `Quick test_heavy_merge_disjoint;
          Alcotest.test_case "copy_into" `Quick test_heavy_copy_into;
          Alcotest.test_case "merge edge cases" `Quick test_heavy_merge_edge_cases;
        ] );
      ( "window",
        [
          Alcotest.test_case "tick deltas" `Quick test_window_tick_deltas;
          Alcotest.test_case "ring eviction" `Quick test_window_ring_eviction;
          Alcotest.test_case "alert and gauges" `Quick test_window_alert_and_gauges;
          Alcotest.test_case "alert hysteresis" `Quick test_window_alert_hysteresis;
          Alcotest.test_case "gc view" `Quick test_window_gc_view;
        ] );
      ( "http",
        [ Alcotest.test_case "routes, errors, stop" `Quick test_http_routes ] );
      ( "monitored serving",
        [
          Alcotest.test_case "sketch agrees with exact counts" `Quick
            test_windowed_sketch_agrees_with_exact;
          Alcotest.test_case "quiet on the low-contention dictionary" `Quick
            test_windowed_quiet_on_low_contention;
          Alcotest.test_case "live scrape is monotone" `Quick
            test_windowed_live_scrape_monotone;
          Alcotest.test_case "updates.json both shapes" `Quick test_updates_json_route;
        ] );
      ( "engine",
        [
          Alcotest.test_case "obs off is byte-identical" `Quick
            test_engine_obs_off_is_byte_identical;
          Alcotest.test_case "counters reconcile with result" `Quick test_engine_obs_reconciles;
          Alcotest.test_case "trace parses and balances per domain" `Quick
            test_engine_obs_trace_balanced;
          Alcotest.test_case "spinlock wait observed per probe" `Quick
            test_engine_obs_spinlock_wait;
        ] );
      ( "build",
        [
          Alcotest.test_case "build spans and counters" `Quick test_build_obs_spans_and_counters;
          Alcotest.test_case "build then serve shares a handle" `Quick
            test_build_then_serve_shared_handle;
        ] );
    ]
