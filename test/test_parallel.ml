(* Tier-1 tests for the multicore serving engine and the reentrant
   instance modes: multi-domain answers agree with sequential [mem],
   atomic probe tallies match the sequential counters, the
   uninstrumented query path still validates against the probe specs,
   and the engine exhibits the Theorem 3 hot-spot separation. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Table = Lc_cellprobe.Table
module Instance = Lc_dict.Instance
module Keyset = Lc_workload.Keyset
module Engine = Lc_parallel.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Static serving through the unified entry point. *)
let serve ?cost ~domains ~queries_per_domain ~seed inst qdist =
  (Engine.run
     (Engine.Config.make ?cost ~domains ~seed ())
     (Engine.Static { inst; qdist; queries_per_domain }))
    .Engine.result

let universe = 1 lsl 18
let n = 256

let lc_fixture seed =
  let rng = Rng.create seed in
  let keys = Keyset.random rng ~universe ~n in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  (rng, keys, Lc_core.Dictionary.instance dict)

(* (a) A multi-domain query storm returns exactly the sequential
   answers: the query path is deterministic in everything but replica
   choice, so domain scheduling and rng streams must not matter. *)
let test_storm_agreement () =
  let rng, keys, inst = lc_fixture 1 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:(4 * n) in
  let queries = Array.append keys negs in
  Rng.shuffle rng queries;
  let seq_rng = Rng.create 99 in
  let expected = Array.map (fun x -> inst.Instance.mem seq_rng x) queries in
  let got = Engine.answer_all ~domains:4 ~seed:5 inst ~queries in
  Array.iteri
    (fun i x ->
      checkb (Printf.sprintf "storm query %d agrees with sequential mem" x) expected.(i)
        got.(i))
    queries

(* (b) Per-cell atomic tallies equal the sequential instrumented
   counters for the same query multiset. Binary search probes
   deterministically (no replica randomness), so equality holds
   cell-by-cell no matter how the multiset is split across domains. *)
let test_atomic_counts_match_sequential_binary_search () =
  let rng = Rng.create 2 in
  let keys = Keyset.random rng ~universe ~n in
  let inst = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
  let negs = Keyset.negatives rng ~universe ~keys ~count:n in
  let queries = Array.append keys negs in
  let seq = Instance.instrumented inst in
  Table.reset_counters seq.Instance.table;
  let seq_rng = Rng.create 3 in
  Array.iter (fun x -> ignore (seq.Instance.mem seq_rng x : bool)) queries;
  let seq_counts =
    Array.init seq.Instance.space (fun j -> Table.probes seq.Instance.table j)
  in
  Table.reset_counters seq.Instance.table;
  let atomic = Instance.atomic inst in
  let domains = 3 in
  let spawned =
    Array.init domains (fun w ->
        Domain.spawn (fun () ->
            let rng = Rng.create (100 + w) in
            let i = ref w in
            while !i < Array.length queries do
              ignore (atomic.Instance.mem rng queries.(!i) : bool);
              i := !i + domains
            done))
  in
  Array.iter Domain.join spawned;
  let counts = Instance.atomic_counts atomic in
  Array.iteri
    (fun j c -> checki (Printf.sprintf "cell %d tally" j) seq_counts.(j) c)
    counts

(* (b') For the low-contention dictionary the per-cell split depends on
   replica choices, but the number of probes per query does not — so
   total atomic probes must equal the sequential total exactly. *)
let test_atomic_total_matches_sequential_lc () =
  let rng, keys, inst = lc_fixture 4 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:n in
  let queries = Array.append keys negs in
  let seq = Instance.instrumented inst in
  Table.reset_counters seq.Instance.table;
  let seq_rng = Rng.create 7 in
  Array.iter (fun x -> ignore (seq.Instance.mem seq_rng x : bool)) queries;
  let seq_total = Table.total_probes seq.Instance.table in
  Table.reset_counters seq.Instance.table;
  let atomic = Instance.atomic inst in
  let domains = 4 in
  let spawned =
    Array.init domains (fun w ->
        Domain.spawn (fun () ->
            let rng = Rng.create (200 + w) in
            let i = ref w in
            while !i < Array.length queries do
              ignore (atomic.Instance.mem rng queries.(!i) : bool);
              i := !i + domains
            done))
  in
  Array.iter Domain.join spawned;
  let total = Array.fold_left ( + ) 0 (Instance.atomic_counts atomic) in
  checki "total atomic probes equal sequential probes" seq_total total

(* (c) The uninstrumented (counter-free, reentrant) query path is the
   same algorithm: it validates against the exact probe specs, and it
   really does leave the table's counters untouched. *)
let test_uninstrumented_agrees_with_spec () =
  let rng, keys, inst = lc_fixture 6 in
  let u = Instance.uninstrumented inst in
  Table.reset_counters u.Instance.table;
  let probe_rng = Rng.create 8 in
  Array.iter (fun x -> ignore (u.Instance.mem probe_rng x : bool)) keys;
  checki "uninstrumented mem counts nothing" 0 (Table.total_probes u.Instance.table);
  let sample =
    Array.append
      (Array.sub keys 0 (min 40 n))
      (Keyset.negatives rng ~universe ~keys ~count:40)
  in
  match Instance.check_spec_against_mem u ~rng:(Rng.create 9) ~queries:sample with
  | Ok () -> ()
  | Error e -> Alcotest.failf "uninstrumented instance fails spec validation: %s" e

let test_mode_switching () =
  let _, _, inst = lc_fixture 10 in
  checkb "default mode is instrumented" true (Instance.mode inst = Instance.Instrumented);
  let u = Instance.uninstrumented inst in
  checkb "uninstrumented mode" true (Instance.mode u = Instance.Uninstrumented);
  checkb "uninstrumented of uninstrumented is itself" true (Instance.uninstrumented u == u);
  checkb "round trip back to instrumented" true
    (Instance.mode (Instance.instrumented u) = Instance.Instrumented);
  let a = Instance.atomic inst in
  checkb "atomic mode" true (Instance.mode a = Instance.Atomic_counters);
  checki "fresh counters are zero" 0 (Array.fold_left ( + ) 0 (Instance.atomic_counts a));
  checkb "atomic_counts rejects non-atomic instances" true
    (try
       ignore (Instance.atomic_counts inst : int array);
       false
     with Invalid_argument _ -> true)

(* Engine-level separation — the acceptance shape of experiment T12:
   the low-contention dictionary's hottest cell stays within a small
   constant factor of the flat bound queries * max_probes / space,
   while unreplicated FKS's parameter cell (probed once per query)
   exceeds it by orders of magnitude. *)
let test_hotspot_separation () =
  let rng = Rng.create 12 in
  let keys = Keyset.random rng ~universe ~n in
  let lc = Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys) in
  let fks = Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys) in
  let qd = Qdist.uniform ~name:"pos" keys in
  List.iter
    (fun domains ->
      let r = serve ~domains ~queries_per_domain:1_500 ~seed:13 lc qd in
      checki "all queries served" (domains * 1_500) r.Engine.queries;
      checki "counts sum to total" r.Engine.total_probes
        (Array.fold_left ( + ) 0 r.Engine.counts);
      checkb "throughput positive" true (r.Engine.throughput > 0.0);
      checkb
        (Printf.sprintf "low-contention hot spot within constant factor (m = %d, ratio %.1f)"
           domains (Engine.hotspot_ratio r))
        true
        (Engine.hotspot_ratio r < 16.0))
    [ 1; 2 ];
  let r = serve ~domains:2 ~queries_per_domain:1_500 ~seed:13 fks qd in
  checkb
    (Printf.sprintf "unreplicated fks hot spot far above flat bound (ratio %.1f)"
       (Engine.hotspot_ratio r))
    true
    (Engine.hotspot_ratio r > 50.0);
  checki "fks parameter cell absorbs one probe per query" r.Engine.queries
    r.Engine.hottest_count

(* The spinlock cost model must not change answers or tallies, only
   timing. *)
let test_spinlock_same_tallies () =
  let rng = Rng.create 14 in
  let keys = Keyset.random rng ~universe ~n in
  let lc = Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys) in
  let qd = Qdist.uniform ~name:"pos" keys in
  let free = serve ~domains:2 ~queries_per_domain:400 ~seed:15 lc qd in
  let locked =
    serve ~cost:(Engine.Spinlock { hold = 4 }) ~domains:2 ~queries_per_domain:400 ~seed:15
      lc qd
  in
  checki "same total probes under spinlock" free.Engine.total_probes locked.Engine.total_probes

(* Crafted result records exercising the summarisers directly:
   count_histogram's log buckets must break exactly at powers of two,
   report untouched cells in the (0, k) bucket, and skip empty buckets;
   top_cells must sort descending and tolerate k larger than the table. *)
let fake_result counts =
  let total = Array.fold_left ( + ) 0 counts in
  let hottest = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!hottest) then hottest := j) counts;
  {
    Engine.name = "fake";
    domains = 1;
    queries = total;
    seconds = 1.0;
    throughput = float_of_int total;
    total_probes = total;
    counts;
    hottest_cell = !hottest;
    hottest_count = counts.(!hottest);
    hottest_share =
      (if total = 0 then 0.0 else float_of_int counts.(!hottest) /. float_of_int total);
    flat_bound = 1.0;
  }

let test_count_histogram_buckets () =
  (* Boundaries: 0 | 1 | 2..3 | 4..7 | 8..15. Values 2 and 3 share a
     bucket; 4 opens the next one. *)
  let r = fake_result [| 0; 0; 1; 2; 3; 4; 7; 8 |] in
  Alcotest.(check (list (pair int int)))
    "power-of-two bucket boundaries"
    [ (0, 2); (1, 1); (3, 2); (7, 2); (15, 1) ]
    (Engine.count_histogram r);
  (* All cells untouched: only the (0, k) bucket. *)
  Alcotest.(check (list (pair int int)))
    "all-zero counts collapse to the (0, k) bucket"
    [ (0, 5) ]
    (Engine.count_histogram (fake_result (Array.make 5 0)));
  (* Empty buckets between populated ones are skipped. *)
  Alcotest.(check (list (pair int int)))
    "empty buckets skipped"
    [ (1, 1); (127, 1) ]
    (Engine.count_histogram (fake_result [| 1; 100 |]))

let test_top_cells () =
  let r = fake_result [| 5; 0; 9; 1; 9 |] in
  (match Engine.top_cells r ~k:3 with
  | [ (c1, 9); (c2, 9); (0, 5) ] when (c1 = 2 && c2 = 4) || (c1 = 4 && c2 = 2) -> ()
  | other ->
    Alcotest.failf "unexpected top-3: %s"
      (String.concat "; " (List.map (fun (j, c) -> Printf.sprintf "(%d,%d)" j c) other)));
  checkb "counts weakly descending" true
    (let rec desc = function
       | (_, a) :: ((_, b) :: _ as rest) -> a >= b && desc rest
       | _ -> true
     in
     desc (Engine.top_cells r ~k:5));
  checki "k beyond the table clamps to every cell" 5
    (List.length (Engine.top_cells r ~k:100));
  checki "k = 0 yields nothing" 0 (List.length (Engine.top_cells r ~k:0))

(* Build_failed diagnostics: at n = 4 the FKS condition of P(S) is
   discrete enough that a first-trial rejection happens for a few
   percent of seeds, so with max_trials:1 some seed below 300 surfaces
   the exception, which must carry the stage and the trial budget. *)
(* Dynamic serving through the unified entry point: windowed telemetry,
   the engine result and the epoch structure's own per-cell tallies
   must all agree exactly — Σ window queries = result.queries, the
   metrics counters match, and Epoch.total_probes equals the readers'
   cumulative count. *)
let test_dynamic_serving_reconciles () =
  let module Epoch = Lc_dynamic.Epoch in
  let module Opstream = Lc_workload.Opstream in
  let rng = Rng.create 41 in
  let keys = Keyset.random rng ~universe ~n in
  let epoch = Epoch.create rng ~universe () in
  Array.iter (Epoch.insert epoch) keys;
  Epoch.publish epoch;
  let snap0 = Epoch.current epoch in
  let domains = 3 in
  let ops =
    Opstream.generate
      ~mix:(Opstream.read_write_mix ~read_fraction:0.9)
      ~initial_pool:keys rng ~universe ~length:(domains * 800) ~working_set:(2 * n)
  in
  let mon =
    Engine.Monitor.create_for ~interval_s:0.02 ~domains ~space:(Epoch.space snap0)
      ~max_probes:(Epoch.max_probes snap0) ()
  in
  let cfg = Engine.Config.make ~monitor:mon ~domains ~seed:42 () in
  let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every = 64 }) in
  let r = o.Engine.result in
  let ins, del, qry = Opstream.counts ops in
  checki "result.queries = stream queries" qry r.Engine.queries;
  checki "window queries sum to the result" r.Engine.queries
    (List.fold_left (fun a (w : Lc_obs.Window.entry) -> a + w.queries) 0 o.Engine.windows);
  let snap = Lc_obs.Obs.snapshot (Engine.Monitor.obs mon) in
  let counter name =
    match Lc_obs.Metrics.Snapshot.counter_value snap name with
    | Some v -> v
    | None -> Alcotest.failf "counter %s missing" name
  in
  checki "engine_queries_total" r.Engine.queries (counter "engine_queries_total");
  checki "engine_probes_total" r.Engine.total_probes (counter "engine_probes_total");
  checki "epoch tallies = reader probes" r.Engine.total_probes (Epoch.total_probes epoch);
  match o.Engine.updates with
  | None -> Alcotest.fail "dynamic run must report update stats"
  | Some u ->
    checki "inserts applied" ins u.Engine.inserts;
    checki "deletes applied" del u.Engine.deletes;
    checki "builder insert counter" ins (counter "engine_inserts_total");
    checki "builder delete counter" del (counter "engine_deletes_total");
    checkb "published beyond the preload snapshot" true (u.Engine.publications >= 2);
    checki "final epoch counts every publication" u.Engine.publications
      (Epoch.epoch (Epoch.current epoch))

(* Phase accounting: instrumented runs must attribute every worker's
   batch wall exactly — probe + tally + publish + pin + other = wall by
   construction — flush the same totals into the engine_phase_*
   counters, and stay [None] (hot path untouched) when uninstrumented. *)
let phase_parts (p : Engine.phase_stats) =
  p.Engine.ph_probe_ns + p.Engine.ph_tally_ns + p.Engine.ph_publish_ns + p.Engine.ph_pin_ns
  + p.Engine.ph_other_ns

let test_phase_accounting_static () =
  let rng, keys, inst = lc_fixture 21 in
  ignore (rng : Rng.t);
  let qd = Qdist.uniform ~name:"pos" keys in
  let obs = Lc_obs.Obs.create () in
  let domains = 3 in
  let cfg = Engine.Config.make ~obs ~domains ~seed:22 () in
  let o = Engine.run cfg (Engine.Static { inst; qdist = qd; queries_per_domain = 600 }) in
  match o.Engine.phases with
  | None -> Alcotest.fail "instrumented static run must carry phase stats"
  | Some phases ->
    checki "one record per worker" domains (Array.length phases);
    Array.iteri
      (fun w (p : Engine.phase_stats) ->
        checki (Printf.sprintf "worker %d index" w) w p.Engine.ph_domain;
        checki
          (Printf.sprintf "worker %d phases sum to wall" w)
          p.Engine.ph_wall_ns (phase_parts p);
        checki (Printf.sprintf "worker %d static pin is 0" w) 0 p.Engine.ph_pin_ns;
        checkb (Printf.sprintf "worker %d probe time positive" w) true
          (p.Engine.ph_probe_ns > 0);
        checkb (Printf.sprintf "worker %d idle non-negative" w) true
          (p.Engine.ph_idle_ns >= 0))
      phases;
    (* The flushed counters must agree with the records they came from. *)
    let snap = Lc_obs.Obs.snapshot obs in
    let counter name =
      match Lc_obs.Metrics.Snapshot.counter_value snap name with
      | Some v -> v
      | None -> Alcotest.failf "counter %s missing" name
    in
    let sum f = Array.fold_left (fun a p -> a + f p) 0 phases in
    checki "wall counter = record sum"
      (sum (fun p -> p.Engine.ph_wall_ns))
      (counter "engine_phase_wall_ns_total");
    checki "probe counter = record sum"
      (sum (fun p -> p.Engine.ph_probe_ns))
      (counter "engine_phase_probe_ns_total");
    checki "idle counter = record sum"
      (sum (fun p -> p.Engine.ph_idle_ns))
      (counter "engine_phase_idle_ns_total")

let test_phase_accounting_dynamic_pins () =
  let module Epoch = Lc_dynamic.Epoch in
  let module Opstream = Lc_workload.Opstream in
  let rng = Rng.create 23 in
  let keys = Keyset.random rng ~universe ~n in
  let epoch = Epoch.create rng ~universe () in
  Array.iter (Epoch.insert epoch) keys;
  Epoch.publish epoch;
  let domains = 2 in
  let ops =
    Opstream.generate
      ~mix:(Opstream.read_write_mix ~read_fraction:0.9)
      ~initial_pool:keys rng ~universe ~length:(domains * 600) ~working_set:(2 * n)
  in
  let obs = Lc_obs.Obs.create () in
  let cfg = Engine.Config.make ~obs ~domains ~seed:24 () in
  let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every = 64 }) in
  match o.Engine.phases with
  | None -> Alcotest.fail "instrumented dynamic run must carry phase stats"
  | Some phases ->
    checki "one record per worker" domains (Array.length phases);
    Array.iteri
      (fun w (p : Engine.phase_stats) ->
        checki
          (Printf.sprintf "worker %d phases sum to wall" w)
          p.Engine.ph_wall_ns (phase_parts p);
        checkb (Printf.sprintf "worker %d pin time positive" w) true
          (p.Engine.ph_pin_ns > 0))
      phases

let test_phase_accounting_off_when_uninstrumented () =
  let _, keys, inst = lc_fixture 25 in
  let qd = Qdist.uniform ~name:"pos" keys in
  let cfg = Engine.Config.make ~domains:2 ~seed:26 () in
  let o = Engine.run cfg (Engine.Static { inst; qdist = qd; queries_per_domain = 200 }) in
  checkb "uninstrumented run reports no phases" true (o.Engine.phases = None)

let test_build_failed_diagnostics () =
  let found = ref None in
  let seed = ref 0 in
  while !found = None && !seed < 300 do
    let rng = Rng.create !seed in
    let keys = Keyset.random rng ~universe ~n:4 in
    (try ignore (Lc_core.Dictionary.build ~max_trials:1 rng ~universe ~keys) with
    | Lc_core.Dictionary.Build_failed { stage; trials; detail } ->
      found := Some (stage, trials, detail));
    incr seed
  done;
  match !found with
  | None -> Alcotest.fail "no seed in [0, 300) exhausted max_trials:1 — suspicious"
  | Some (stage, trials, detail) ->
    checki "trial budget recorded" 1 trials;
    checkb "stage names P(S) rejection sampling" true
      (stage = "P(S) rejection sampling");
    checkb "detail is populated" true (String.length detail > 0)

let () =
  Alcotest.run "lc_parallel"
    [
      ( "engine",
        [
          Alcotest.test_case "storm agreement" `Quick test_storm_agreement;
          Alcotest.test_case "hotspot separation" `Quick test_hotspot_separation;
          Alcotest.test_case "spinlock same tallies" `Quick test_spinlock_same_tallies;
          Alcotest.test_case "count_histogram buckets" `Quick test_count_histogram_buckets;
          Alcotest.test_case "top_cells" `Quick test_top_cells;
        ] );
      ( "modes",
        [
          Alcotest.test_case "atomic counts = sequential (binary search)" `Quick
            test_atomic_counts_match_sequential_binary_search;
          Alcotest.test_case "atomic total = sequential (low-contention)" `Quick
            test_atomic_total_matches_sequential_lc;
          Alcotest.test_case "uninstrumented agrees with spec" `Quick
            test_uninstrumented_agrees_with_spec;
          Alcotest.test_case "mode switching" `Quick test_mode_switching;
        ] );
      ( "phases",
        [
          Alcotest.test_case "static attribution reconciles" `Quick
            test_phase_accounting_static;
          Alcotest.test_case "dynamic runs charge pin time" `Quick
            test_phase_accounting_dynamic_pins;
          Alcotest.test_case "absent when uninstrumented" `Quick
            test_phase_accounting_off_when_uninstrumented;
        ] );
      ( "build",
        [
          Alcotest.test_case "Build_failed diagnostics" `Quick test_build_failed_diagnostics;
          Alcotest.test_case "dynamic serving reconciles" `Quick
            test_dynamic_serving_reconciles;
        ] );
    ]
