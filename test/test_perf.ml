(* Tier-1 tests for the perf-trajectory subsystem: strict artifact
   round-trips and schema validation, suite reconciliation against the
   engine's ground truth, differential analysis on the committed
   fixtures (a planted 2x regression must be flagged; a self-diff must
   stay silent), the flight-recorder journal rings, and the
   alert-triggered postmortem path end to end. *)

module Artifact = Lc_perf.Artifact
module Scaling = Lc_perf.Scaling
module Usl = Lc_analysis.Usl
module Suite = Lc_perf.Suite
module Diff = Lc_perf.Diff
module Postmortem = Lc_perf.Postmortem
module Select = Lc_perf.Select
module Journal = Lc_obs.Journal
module Window = Lc_obs.Window
module Engine = Lc_parallel.Engine
module Rng = Lc_prim.Rng
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let fp =
  {
    Artifact.ocaml_version = "5.1.1";
    os_type = "Unix";
    word_size = 64;
    cores = 2;
    git_rev = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef";
    seed = 42;
    clock_overhead_ns = 25.5;
    probe_sample_period = 64;
    created_unix = 1754000000.0;
  }

let ci mean lo hi samples = { Artifact.mean; lo; hi; samples }

let entry ?(structure = "lc") ?(workload = "pos") ?(domains = 2) ?ns_per_update ?write_amp
    ?minor_words_per_query ?major_collections ~ns ~probes () =
  {
    Artifact.structure;
    workload;
    domains;
    queries_per_domain = 1000;
    trials = List.length ns.Artifact.samples;
    ns_per_query = ns;
    probes_per_query = probes;
    p50_ns = 90.0;
    p99_ns = 140.0;
    hotspot_ratio = 0.5;
    queries = 4000;
    probes = 60000;
    ns_per_update;
    write_amp;
    minor_words_per_query;
    major_collections;
  }

let small_artifact () =
  {
    Artifact.fingerprint = fp;
    entries =
      [
        entry
          ~ns:(ci 100.0 98.0 102.0 [ 100.0; 102.0; 98.0 ])
          ~probes:(ci 15.0 15.0 15.0 [ 15.0; 15.0; 15.0 ])
          ();
        entry ~structure:"fks-norepl"
          ~ns:(ci 50.25 48.0 52.5 [ 50.0; 51.0; 49.75 ])
          ~probes:(ci 4.0 4.0 4.0 [ 4.0; 4.0; 4.0 ])
          ();
      ];
  }

(* ------------------------------------------------------------------ *)
(* Artifact                                                             *)
(* ------------------------------------------------------------------ *)

let test_artifact_roundtrip () =
  let base = small_artifact () in
  (* A dynamic entry carrying the optional update-path fields sits next
     to entries without them: the codec must round-trip both shapes,
     and reading back an entry with no such fields must yield [None]
     (the back-compat path for artifacts written before the update
     observatory). *)
  let dyn =
    entry ~structure:"lc-dyn" ~workload:"rw:0.90"
      ~ns_per_update:(ci 800.0 750.0 850.0 [ 780.0; 800.0; 820.0 ])
      ~write_amp:6.5
      ~ns:(ci 120.0 118.0 122.0 [ 119.0; 120.0; 121.0 ])
      ~probes:(ci 9.0 9.0 9.0 [ 9.0; 9.0; 9.0 ])
      ()
  in
  let art = { base with Artifact.entries = base.Artifact.entries @ [ dyn ] } in
  match Artifact.of_string (Artifact.to_string art) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok art' ->
    checkb "round-trip preserves the artifact exactly" true (art = art');
    let first = List.hd art'.Artifact.entries in
    checkb "static entries read back without update fields" true
      (first.Artifact.ns_per_update = None && first.Artifact.write_amp = None)

let test_artifact_validation () =
  let reject what s =
    match Artifact.of_string s with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  reject "wrong schema" {|{"schema":"nope","version":1}|};
  reject "future version"
    {|{"schema":"lowcon-bench","version":99,"fingerprint":{},"entries":[]}|};
  reject "missing entries"
    {|{"schema":"lowcon-bench","version":1,"fingerprint":{"ocaml_version":"5.1.1","os_type":"Unix","word_size":64,"cores":2,"git_rev":"x","seed":1,"clock_overhead_ns":1.0,"probe_sample_period":64,"created_unix":0.0}}|};
  reject "not JSON" "BENCH";
  (* Error messages carry enough context to locate the problem. *)
  (match Artifact.of_string {|{"schema":"nope","version":1}|} with
  | Error e -> checkb "error names the schema" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted")

let test_artifact_strict_rejects_nonfinite () =
  let art = small_artifact () in
  let bad =
    {
      art with
      Artifact.entries =
        [ entry ~ns:(ci Float.nan 0.0 1.0 [ 1.0 ]) ~probes:(ci 1.0 1.0 1.0 [ 1.0 ]) () ];
    }
  in
  match Artifact.to_string bad with
  | exception Failure msg ->
    checkb "failure names the JSON path" true
      (String.length msg > 0
      &&
      let rec contains i =
        i + 4 <= String.length msg && (String.sub msg i 4 = "mean" || contains (i + 1))
      in
      contains 0)
  | _ -> Alcotest.fail "NaN was serialised"

let with_temp_dir f =
  let dir = Filename.temp_file "lcperf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_artifact_next_path () =
  with_temp_dir @@ fun dir ->
  checks "first artifact is BENCH_0"
    (Filename.concat dir "BENCH_0.json")
    (Artifact.next_path ~dir);
  let art = small_artifact () in
  Artifact.write ~path:(Filename.concat dir "BENCH_0.json") art;
  Artifact.write ~path:(Filename.concat dir "BENCH_3.json") art;
  checks "numbering continues past the max"
    (Filename.concat dir "BENCH_4.json")
    (Artifact.next_path ~dir);
  (* The written file is a valid artifact. *)
  match Artifact.load (Filename.concat dir "BENCH_0.json") with
  | Ok a -> checki "written artifact loads" 2 (List.length a.Artifact.entries)
  | Error e -> Alcotest.failf "load failed: %s" e

(* ------------------------------------------------------------------ *)
(* Suite                                                                *)
(* ------------------------------------------------------------------ *)

let tiny_spec =
  {
    Suite.structures = [ "lc" ];
    workloads = [ "pos" ];
    domain_counts = [ 2 ];
    queries_per_domain = 200;
    trials = 2;
    n = 64;
    (* No mixed axis: the static tests below expect exactly one entry. *)
    rw_workloads = [];
    rw_domain_counts = [];
    ops_per_domain = 1;
  }

(* Suite.run raises if any trial's telemetry counters disagree with the
   engine's result totals, so completing at all is the reconciliation
   check; the entry's totals must then add up across trials. *)
let test_suite_reconciles () =
  let art = Suite.run ~seed:3 tiny_spec in
  match art.Artifact.entries with
  | [ e ] ->
    checki "queries = trials * domains * queries_per_domain" (2 * 2 * 200) e.Artifact.queries;
    checkb "probes accumulated" true (e.Artifact.probes > 0);
    checki "one sample per trial" 2 (List.length e.Artifact.ns_per_query.Artifact.samples);
    checkb "CI ordered" true
      (e.Artifact.ns_per_query.Artifact.lo <= e.Artifact.ns_per_query.Artifact.hi);
    checki "fingerprint records the seed" 3 art.Artifact.fingerprint.Artifact.seed;
    checki "fingerprint records the sampling period" Engine.probe_sample_period
      art.Artifact.fingerprint.Artifact.probe_sample_period
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

(* The mixed axis rides behind the static grid: entries keep their
   order (static first), the mixed entry is keyed by the dynamic
   structure name, and completing at all means both reconciliations
   (telemetry vs result, epoch tallies vs reader probes) held. *)
let test_suite_mixed_axis () =
  let spec =
    { tiny_spec with Suite.rw_workloads = [ "rw:0.80" ]; rw_domain_counts = [ 2 ];
      ops_per_domain = 300 }
  in
  let art = Suite.run ~seed:5 spec in
  match art.Artifact.entries with
  | [ stat; mixed ] ->
    checks "static entry first" "lc" stat.Artifact.structure;
    checks "mixed entry keyed by the dynamic name" Lc_perf.Select.dynamic_name
      mixed.Artifact.structure;
    checks "mixed workload spec preserved" "rw:0.80" mixed.Artifact.workload;
    checki "queries_per_domain records the op budget" 300 mixed.Artifact.queries_per_domain;
    checkb "queries counted across trials" true (mixed.Artifact.queries > 0);
    checkb "probes accumulated" true (mixed.Artifact.probes > 0)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_suite_probes_deterministic_in_seed () =
  (* Binary search probes depend on where each queried key lands, so
     probe totals fingerprint the sampled keys and query batches; the
     low-contention structure would not work here (its positive lookups
     cost the same number of probes whatever the seed). *)
  let spec = { tiny_spec with Suite.structures = [ "binary" ] } in
  let probes art =
    List.map (fun (e : Artifact.entry) -> e.Artifact.probes) art.Artifact.entries
  in
  let a = Suite.run ~seed:11 spec and b = Suite.run ~seed:11 spec in
  checkb "same seed, same probe totals" true (probes a = probes b);
  let c = Suite.run ~seed:12 spec in
  (* Different seed samples different keys and batches; identical probe
     totals would mean the seed is not actually plumbed through. *)
  checkb "different seed changes the workload" true (probes a <> probes c)

(* ------------------------------------------------------------------ *)
(* Diff                                                                 *)
(* ------------------------------------------------------------------ *)

(* The dune deps copy fixtures/ next to the test executable; resolve
   against the executable so `dune exec` from the root also works. *)
let fixture_path name =
  Filename.concat (Filename.concat (Filename.dirname Sys.executable_name) "fixtures") name

let load_fixture name =
  match Artifact.load (fixture_path name) with
  | Ok a -> a
  | Error e -> Alcotest.failf "fixture %s: %s" name e

let test_diff_flags_planted_regression () =
  let a = load_fixture "bench_a.json" and b = load_fixture "bench_b_regressed.json" in
  let r = Diff.compare_artifacts a b in
  checkb "regression detected" true (Diff.has_regression r);
  checki "exactly one configuration regressed" 1 r.Diff.regressions;
  let lc = List.find (fun row -> row.Diff.key = ("lc", "pos", 2)) r.Diff.rows in
  checkb "ns verdict is regression" true (lc.Diff.ns.Diff.verdict = Diff.Regression);
  checkb "MW-U used the exact null" true
    (lc.Diff.ns.Diff.method_ = Lc_analysis.Sigtest.Exact);
  checkb "p below alpha" true (lc.Diff.ns.Diff.p < 0.05);
  checkb "CIs disjoint" true lc.Diff.ns.Diff.disjoint;
  checkb "doubling reported" true (Float.abs (lc.Diff.ns.Diff.delta_pct -. 100.0) < 1.0);
  checkb "identical probe counts stay quiet" true
    (lc.Diff.probes.Diff.verdict = Diff.No_change);
  let fks = List.find (fun row -> row.Diff.key = ("fks-norepl", "pos", 2)) r.Diff.rows in
  checkb "untouched configuration stays quiet" true
    (fks.Diff.ns.Diff.verdict = Diff.No_change);
  (* Reversed direction reads as an improvement, not a regression. *)
  let r' = Diff.compare_artifacts b a in
  checki "no regression in reverse" 0 r'.Diff.regressions;
  checki "improvement in reverse" 1 r'.Diff.improvements

let test_diff_self_is_silent () =
  let a = load_fixture "bench_a.json" in
  let r = Diff.compare_artifacts a a in
  checki "no regressions against self" 0 r.Diff.regressions;
  checki "no improvements against self" 0 r.Diff.improvements;
  List.iter
    (fun row ->
      checkb "every metric reports no change" true
        (row.Diff.ns.Diff.verdict = Diff.No_change
        && row.Diff.probes.Diff.verdict = Diff.No_change);
      (* The normal-approximation CDF is accurate to ~1e-7, so p lands
         that close to 1 rather than exactly on it. *)
      Alcotest.check (Alcotest.float 1e-6) "self-diff p-value is 1" 1.0 row.Diff.ns.Diff.p)
    r.Diff.rows

let test_diff_unmatched_and_render () =
  let a = small_artifact () in
  let b = { a with Artifact.entries = [ List.hd a.Artifact.entries ] } in
  let r = Diff.compare_artifacts a b in
  checki "matched rows" 1 (List.length r.Diff.rows);
  checkb "missing config reported" true (r.Diff.only_in_a = [ ("fks-norepl", "pos", 2) ]);
  let rendered = Diff.render r in
  let contains needle hay =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  checkb "render names the missing config" true (contains "only in A" rendered);
  checkb "render names the key" true (contains "lc/pos@2" rendered);
  (match Lc_obs.Json.to_string_strict (Diff.to_json r) with
  | Ok s -> checkb "report JSON parses back" true (Result.is_ok (Lc_obs.Json.parse s))
  | Error _ -> Alcotest.fail "report JSON had non-finite values");
  checkb "prometheus gauges exported" true
    (contains "perf_diff_regressions" (Diff.prometheus r))

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_ring_overwrite () =
  let j = Journal.create ~writers:2 ~capacity:4 in
  for i = 1 to 6 do
    Journal.record j ~writer:0 (Journal.Publish { queries = i })
  done;
  checki "total counts every record" 6 (Journal.total_recorded j);
  checki "overwritten events are dropped" 2 (Journal.dropped j);
  let es = Journal.events j in
  checki "ring retains capacity events" 4 (List.length es);
  let queries =
    List.filter_map
      (function { Journal.kind = Journal.Publish { queries }; _ } -> Some queries | _ -> None)
      es
  in
  checkb "newest events win" true (queries = [ 3; 4; 5; 6 ]);
  List.iteri
    (fun i (e : Journal.event) -> checki "seq numbers are monotone" (i + 2) e.Journal.seq)
    es

let test_journal_merges_writers_by_time () =
  let j = Journal.create ~writers:3 ~capacity:8 in
  Journal.record j ~writer:0 (Journal.Stage { name = "build"; mark = `Begin });
  Journal.record j ~writer:1 (Journal.Publish { queries = 10 });
  Journal.record j ~writer:2 (Journal.Window_cut
    { index = 0; queries = 10; qps = 1.0; p50_ns = 1.0; p99_ns = 2.0;
      hotspot_ratio = 0.5; alert = false });
  Journal.record j ~writer:0 (Journal.Stage { name = "build"; mark = `End });
  let es = Journal.events j in
  checki "all writers merged" 4 (List.length es);
  let ts = List.map (fun (e : Journal.event) -> e.Journal.t_ns) es in
  checkb "timestamp order" true (List.sort compare ts = ts);
  checkb "writer ids preserved" true
    (List.sort compare (List.map (fun (e : Journal.event) -> e.Journal.writer) es)
    = [ 0; 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Postmortem                                                           *)
(* ------------------------------------------------------------------ *)

let universe = 1 lsl 16

let serve_with_recorder ~structure ~alert_factor ~seed =
  let rng = Rng.create seed in
  let keys = Keyset.random rng ~universe ~n:128 in
  let inst = Select.structure rng ~universe ~keys structure in
  let qd = Select.workload rng ~universe ~keys "pos" in
  let domains = 2 in
  let journal = Journal.create ~writers:(domains + 2) ~capacity:512 in
  let captured = ref None in
  let mon_ref = ref None in
  let on_alert e =
    match !mon_ref with
    | None -> ()
    | Some mon ->
      captured :=
        Some
          (Postmortem.capture ~fingerprint:fp ~structure ~workload:"pos" ~domains ~trigger:e
             mon)
  in
  let mon = Engine.Monitor.create ~alert_factor ~journal ~on_alert ~domains inst in
  mon_ref := Some mon;
  let w =
    Engine.run
      (Engine.Config.make ~monitor:mon ~domains ~seed ())
      (Engine.Static { inst; qdist = qd; queries_per_domain = 500 })
  in
  (w, !captured)

let contains needle hay =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_postmortem_dump_on_hot_structure () =
  (* Unreplicated FKS funnels every query through its parameter cell;
     at a low factor the alert must fire and the hook must capture. *)
  let w, captured = serve_with_recorder ~structure:"fks-norepl" ~alert_factor:2.0 ~seed:9 in
  checkb "alert fired" true (w.Engine.alert_windows > 0);
  match captured with
  | None -> Alcotest.fail "on_alert hook never captured a postmortem"
  | Some pm ->
    checkb "trigger ratio above factor" true (pm.Postmortem.trigger.Postmortem.ratio > 2.0);
    checkb "windows captured" true (pm.Postmortem.windows <> []);
    checkb "journal events captured" true (pm.Postmortem.events <> []);
    checkb "alert state captured" true pm.Postmortem.alert.Postmortem.active;
    (* Round-trip: the dump re-reads into the same value. *)
    (match Postmortem.of_string (Postmortem.to_string pm) with
    | Error e -> Alcotest.failf "postmortem round-trip failed: %s" e
    | Ok pm' -> checkb "round-trip preserves the dump exactly" true (pm = pm'));
    (* The analyzer reconstructs the story from the document alone. *)
    let report = Postmortem.analyze pm in
    checkb "analyzer names the structure" true (contains "fks-norepl" report);
    checkb "analyzer shows the raise" true (contains "ALERT RAISED" report);
    checkb "analyzer shows the serve stage" true (contains "stage serve" report);
    checkb "analyzer shows worker publications" true (contains "worker published" report)

let test_postmortem_quiet_on_low_contention () =
  let w, captured = serve_with_recorder ~structure:"lc" ~alert_factor:8.0 ~seed:9 in
  checki "no alert windows on the low-contention dictionary" 0 w.Engine.alert_windows;
  checkb "no dump captured" true (captured = None)

let test_postmortem_validation () =
  (match Postmortem.of_string {|{"schema":"lowcon-bench","version":1}|} with
  | Ok _ -> Alcotest.fail "bench schema accepted as postmortem"
  | Error _ -> ());
  match Postmortem.of_string {|{"schema":"lowcon-postmortem","version":7}|} with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e -> checkb "version error mentions the number" true (contains "7" e)

(* ------------------------------------------------------------------ *)
(* GC fields on bench entries                                           *)
(* ------------------------------------------------------------------ *)

let test_artifact_gc_fields_roundtrip () =
  (* An entry carrying the scaling-observatory GC fields round-trips
     exactly — including the hot path's expected 0.0 words/query — and
     one without them reads back as [None]. *)
  let with_gc =
    entry ~minor_words_per_query:0.0 ~major_collections:3
      ~ns:(ci 100.0 98.0 102.0 [ 100.0; 102.0; 98.0 ])
      ~probes:(ci 15.0 15.0 15.0 [ 15.0; 15.0; 15.0 ])
      ()
  in
  let base = small_artifact () in
  let art = { base with Artifact.entries = base.Artifact.entries @ [ with_gc ] } in
  (match Artifact.of_string (Artifact.to_string art) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok art' ->
    checkb "round-trip preserves GC fields" true (art = art');
    let last = List.nth art'.Artifact.entries 2 in
    checkb "Some 0.0 survives (not collapsed to None)" true
      (last.Artifact.minor_words_per_query = Some 0.0
      && last.Artifact.major_collections = Some 3);
    let first = List.hd art'.Artifact.entries in
    checkb "entries without GC fields read back as None" true
      (first.Artifact.minor_words_per_query = None
      && first.Artifact.major_collections = None));
  (* Back-compat: the committed pre-observatory fixture has no GC
     members and must decode with both fields [None]. *)
  let old = load_fixture "bench_a.json" in
  List.iter
    (fun (e : Artifact.entry) ->
      checkb "pre-observatory entry decodes to None" true
        (e.Artifact.minor_words_per_query = None && e.Artifact.major_collections = None))
    old.Artifact.entries

(* ------------------------------------------------------------------ *)
(* Scaling artifact                                                     *)
(* ------------------------------------------------------------------ *)

(* One real sweep, shared by the scaling tests (the run itself asserts
   phase/counter reconciliation internally, so merely completing is
   already a check). *)
let scaling_fixture =
  lazy
    (Scaling.run ~seed:11
       {
         Scaling.structure = "lc";
         workload = "pos";
         domain_counts = [ 1; 2; 3 ];
         queries_per_domain = 300;
         trials = 2;
         n = 128;
       })

let test_scaling_run_reconciles () =
  let t = Lazy.force scaling_fixture in
  checki "one point per domain count" 3 (List.length t.Scaling.points);
  List.iteri
    (fun i (p : Scaling.point) ->
      checki
        (Printf.sprintf "points[%d] domains" i)
        (i + 1) p.Scaling.p_domains;
      checki
        (Printf.sprintf "points[%d] queries" i)
        ((i + 1) * 300 * 2)
        p.Scaling.p_queries;
      let ph = p.Scaling.p_phases in
      checki
        (Printf.sprintf "points[%d] phases sum to wall" i)
        ph.Scaling.wall_ns
        (ph.Scaling.probe_ns + ph.Scaling.tally_ns + ph.Scaling.publish_ns
        + ph.Scaling.pin_ns + ph.Scaling.other_ns);
      checkb (Printf.sprintf "points[%d] throughput positive" i) true
        (p.Scaling.throughput.Artifact.mean > 0.0);
      checkb (Printf.sprintf "points[%d] alloc gauge sane" i) true
        (Float.is_finite p.Scaling.p_gc.Scaling.minor_words_per_query
        && p.Scaling.p_gc.Scaling.minor_words_per_query >= 0.0))
    t.Scaling.points;
  checki "summary point count" 3 t.Scaling.summary.Scaling.s_points;
  checkb "exactly one of fit / fit_error" true
    (match (t.Scaling.fit, t.Scaling.fit_error) with
    | Some _, None | None, Some _ -> true
    | _ -> false);
  (* The render never raises and carries the per-point table. *)
  checkb "render mentions every domain count" true
    (let s = Scaling.render t in
     contains "1" s && contains "2" s && contains "3" s)

let test_scaling_roundtrip () =
  let t = Lazy.force scaling_fixture in
  match Scaling.of_string (Scaling.to_string t) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok t' -> checkb "round-trip preserves the artifact exactly" true (t = t')

let test_scaling_rejects_tampered_summary () =
  let t = Lazy.force scaling_fixture in
  let doctored =
    {
      t with
      Scaling.summary =
        {
          t.Scaling.summary with
          Scaling.s_peak_qps = (2.0 *. t.Scaling.summary.Scaling.s_peak_qps) +. 1.0;
        };
    }
  in
  match Scaling.of_string (Scaling.to_string doctored) with
  | Ok _ -> Alcotest.fail "tampered summary was accepted"
  | Error e -> checkb "error names the tampering" true (contains "summary" e)

let test_scaling_fit_exclusivity () =
  let t = Lazy.force scaling_fixture in
  let dummy = { Usl.lambda = 1.0; sigma = 0.1; kappa = 0.01; r2 = 0.99 } in
  (match
     Scaling.of_string
       (Scaling.to_string { t with Scaling.fit = Some dummy; fit_error = Some "x" })
   with
  | Ok _ -> Alcotest.fail "fit and fit_error together were accepted"
  | Error e -> checkb "both rejected" true (contains "both" e));
  match
    Scaling.of_string (Scaling.to_string { t with Scaling.fit = None; fit_error = None })
  with
  | Ok _ -> Alcotest.fail "absent fit and fit_error were accepted"
  | Error e -> checkb "neither rejected" true (contains "neither" e)

let test_scaling_rejects_malformed () =
  (match Scaling.of_string {|{"schema":"lowcon-bench","version":1}|} with
  | Ok _ -> Alcotest.fail "bench schema accepted as scaling artifact"
  | Error _ -> ());
  let t = Lazy.force scaling_fixture in
  (* Out-of-order points. *)
  (match
     Scaling.of_string (Scaling.to_string { t with Scaling.points = List.rev t.Scaling.points })
   with
  | Ok _ -> Alcotest.fail "descending domain counts accepted"
  | Error e -> checkb "ordering error" true (contains "ascending" e));
  (* A point whose phase attribution does not reconcile. *)
  let broken =
    match t.Scaling.points with
    | p :: rest ->
      { p with Scaling.p_phases = { p.Scaling.p_phases with Scaling.probe_ns = p.Scaling.p_phases.Scaling.probe_ns + 1 } }
      :: rest
    | [] -> assert false
  in
  match Scaling.of_string (Scaling.to_string { t with Scaling.points = broken }) with
  | Ok _ -> Alcotest.fail "non-reconciling phases accepted"
  | Error e -> checkb "reconciliation error" true (contains "reconcile" e)

let () =
  Alcotest.run "lc_perf"
    [
      ( "artifact",
        [
          Alcotest.test_case "strict round-trip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "schema validation" `Quick test_artifact_validation;
          Alcotest.test_case "rejects non-finite floats" `Quick
            test_artifact_strict_rejects_nonfinite;
          Alcotest.test_case "BENCH_<n> numbering" `Quick test_artifact_next_path;
        ] );
      ( "suite",
        [
          Alcotest.test_case "reconciles with engine totals" `Quick test_suite_reconciles;
          Alcotest.test_case "mixed axis" `Quick test_suite_mixed_axis;
          Alcotest.test_case "probes deterministic in seed" `Quick
            test_suite_probes_deterministic_in_seed;
        ] );
      ( "diff",
        [
          Alcotest.test_case "flags planted 2x regression" `Quick
            test_diff_flags_planted_regression;
          Alcotest.test_case "self-diff is silent" `Quick test_diff_self_is_silent;
          Alcotest.test_case "unmatched keys and renderings" `Quick
            test_diff_unmatched_and_render;
        ] );
      ( "journal",
        [
          Alcotest.test_case "ring overwrite" `Quick test_journal_ring_overwrite;
          Alcotest.test_case "merges writers by time" `Quick
            test_journal_merges_writers_by_time;
        ] );
      ( "postmortem",
        [
          Alcotest.test_case "dump on hot structure" `Quick test_postmortem_dump_on_hot_structure;
          Alcotest.test_case "quiet on low contention" `Quick
            test_postmortem_quiet_on_low_contention;
          Alcotest.test_case "schema validation" `Quick test_postmortem_validation;
        ] );
      ( "gc-fields",
        [
          Alcotest.test_case "round-trip and back-compat" `Quick
            test_artifact_gc_fields_roundtrip;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "sweep reconciles" `Quick test_scaling_run_reconciles;
          Alcotest.test_case "strict round-trip" `Quick test_scaling_roundtrip;
          Alcotest.test_case "rejects tampered summary" `Quick
            test_scaling_rejects_tampered_summary;
          Alcotest.test_case "fit exclusivity" `Quick test_scaling_fit_exclusivity;
          Alcotest.test_case "rejects malformed documents" `Quick
            test_scaling_rejects_malformed;
        ] );
    ]
