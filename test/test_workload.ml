(* Tests for the workload generators. *)

module Rng = Lc_prim.Rng
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let universe = 100_000

let all_distinct a =
  let s = Array.copy a in
  Array.sort compare s;
  let ok = ref true in
  for i = 1 to Array.length s - 1 do
    if s.(i) = s.(i - 1) then ok := false
  done;
  !ok

let in_universe a = Array.for_all (fun x -> x >= 0 && x < universe) a

let test_random () =
  let rng = Rng.create 1 in
  let keys = Keyset.random rng ~universe ~n:500 in
  checki "count" 500 (Array.length keys);
  checkb "distinct" true (all_distinct keys);
  checkb "in universe" true (in_universe keys)

let test_dense () =
  let keys = Keyset.dense ~universe ~n:100 in
  Alcotest.check (Alcotest.array Alcotest.int) "interval" (Array.init 100 Fun.id) keys;
  Alcotest.check_raises "too large" (Invalid_argument "Keyset.dense: n > universe") (fun () ->
      ignore (Keyset.dense ~universe:10 ~n:11))

let test_clustered () =
  let rng = Rng.create 2 in
  let keys = Keyset.clustered rng ~universe ~n:100 ~clusters:5 in
  checki "count" 100 (Array.length keys);
  checkb "distinct" true (all_distinct keys);
  checkb "in universe" true (in_universe keys);
  (* 5 clusters of consecutive keys: sorting them yields at most 5 gaps. *)
  let s = Array.copy keys in
  Array.sort compare s;
  let gaps = ref 0 in
  for i = 1 to 99 do
    if s.(i) <> s.(i - 1) + 1 then incr gaps
  done;
  checkb "at most 4 internal gaps" true (!gaps <= 4)

let test_arithmetic () =
  let keys = Keyset.arithmetic ~universe ~n:10 ~stride:7 in
  Alcotest.check (Alcotest.array Alcotest.int) "progression"
    [| 0; 7; 14; 21; 28; 35; 42; 49; 56; 63 |] keys;
  Alcotest.check_raises "escapes universe"
    (Invalid_argument "Keyset.arithmetic: progression leaves universe") (fun () ->
      ignore (Keyset.arithmetic ~universe:50 ~n:10 ~stride:7))

let test_negatives () =
  let rng = Rng.create 3 in
  let keys = Keyset.random rng ~universe ~n:200 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:300 in
  checki "count" 300 (Array.length negs);
  checkb "distinct" true (all_distinct negs);
  checkb "disjoint from keys" true
    (Array.for_all (fun x -> not (Array.mem x keys)) negs)

(* ------------------------------------------------------------------ *)
(* Opstream                                                             *)
(* ------------------------------------------------------------------ *)

module Opstream = Lc_workload.Opstream

let test_opstream_mix () =
  let rng = Rng.create 10 in
  let ops = Opstream.generate rng ~universe ~length:10_000 ~working_set:200 in
  checki "length" 10_000 (Array.length ops);
  let ins = ref 0 and del = ref 0 and qry = ref 0 in
  Array.iter
    (fun (op : Opstream.op) ->
      match op with
      | Insert _ -> incr ins
      | Delete _ -> incr del
      | Query _ -> incr qry)
    ops;
  let frac c = float_of_int !c /. 10_000.0 in
  checkb "insert fraction ~0.4" true (Float.abs (frac ins -. 0.4) < 0.03);
  checkb "delete fraction ~0.1" true (Float.abs (frac del -. 0.1) < 0.03);
  checkb "query fraction ~0.5" true (Float.abs (frac qry -. 0.5) < 0.03)

let test_opstream_working_set () =
  let rng = Rng.create 11 in
  let ws = 50 in
  let ops = Opstream.generate rng ~universe ~length:5_000 ~working_set:ws in
  let keys = Hashtbl.create 64 in
  Array.iter
    (fun (op : Opstream.op) ->
      let x = match op with Insert x | Delete x | Query x -> x in
      Hashtbl.replace keys x ())
    ops;
  checkb "at most ws distinct keys" true (Hashtbl.length keys <= ws)

let test_opstream_oracle_consistency () =
  (* Playing the stream against the dynamic dictionary must match the
     model-set oracle on every query. *)
  let rng = Rng.create 12 in
  let ops = Opstream.generate rng ~universe ~length:2_000 ~working_set:100 in
  let expected = Opstream.replay_oracle ops in
  let t = Lc_dynamic.Dynamic.create (Rng.create 13) ~universe () in
  let qrng = Rng.create 14 in
  Array.iteri
    (fun i (op : Opstream.op) ->
      match op with
      | Insert x -> Lc_dynamic.Dynamic.insert t x
      | Delete x -> Lc_dynamic.Dynamic.delete t x
      | Query x ->
        checkb
          (Printf.sprintf "op %d: query %d" i x)
          expected.(i)
          (Lc_dynamic.Dynamic.mem t qrng x))
    ops;
  match Lc_dynamic.Dynamic.check t qrng with Ok () -> () | Error e -> Alcotest.fail e

let test_opstream_apply_counters () =
  let rng = Rng.create 15 in
  let ops = Opstream.generate rng ~universe ~length:500 ~working_set:40 in
  let t = Lc_dynamic.Dynamic.create (Rng.create 16) ~universe () in
  let ins, del, hits = Opstream.apply t (Rng.create 17) ops in
  checkb "counts partition the stream's updates" true
    (ins + del <= 500 && hits <= 500 && ins > 0)

let test_read_write_mix_fractions () =
  let rng = Rng.create 19 in
  let ops =
    Opstream.generate ~mix:(Opstream.read_write_mix ~read_fraction:0.9) rng ~universe
      ~length:10_000 ~working_set:200
  in
  let ins, del, qry = Opstream.counts ops in
  let frac c = float_of_int c /. 10_000.0 in
  checkb "query fraction ~0.9" true (Float.abs (frac qry -. 0.9) < 0.02);
  checkb "insert fraction ~0.05" true (Float.abs (frac ins -. 0.05) < 0.02);
  checkb "delete fraction ~0.05" true (Float.abs (frac del -. 0.05) < 0.02);
  checkb "read_fraction outside [0,1] rejected" true
    (try
       ignore (Opstream.read_write_mix ~read_fraction:1.5);
       false
     with Invalid_argument _ -> true)

let test_opstream_counts () =
  let rng = Rng.create 20 in
  let ops = Opstream.generate rng ~universe ~length:3_000 ~working_set:80 in
  let ins, del, qry = Opstream.counts ops in
  checki "counts partition the stream" 3_000 (ins + del + qry)

let test_opstream_split_round_robin () =
  let rng = Rng.create 21 in
  let ops = Opstream.generate rng ~universe ~length:2_000 ~working_set:80 in
  let domains = 3 in
  let updates, per_domain = Opstream.split ops ~domains in
  let ins, del, qry = Opstream.counts ops in
  checki "updates keep every insert and delete" (ins + del) (Array.length updates);
  checki "queries are dealt without loss" qry
    (Array.fold_left (fun a q -> a + Array.length q) 0 per_domain);
  (* The update subsequence preserves stream order, and domain d gets
     exactly the queries whose query-index is d mod domains, in order. *)
  let expected_updates =
    Array.of_list
      (List.filter
         (function Opstream.Insert _ | Opstream.Delete _ -> true | Opstream.Query _ -> false)
         (Array.to_list ops))
  in
  checkb "updates in stream order" true (updates = expected_updates);
  let q_keys =
    Array.of_list
      (List.filter_map
         (function Opstream.Query x -> Some x | _ -> None)
         (Array.to_list ops))
  in
  let ok = ref true in
  Array.iteri
    (fun d qs ->
      Array.iteri (fun i x -> if q_keys.((i * domains) + d) <> x then ok := false) qs)
    per_domain;
  checkb "round-robin deal" true !ok

let test_opstream_initial_pool () =
  let rng = Rng.create 22 in
  let pool = Keyset.random (Rng.create 23) ~universe ~n:30 in
  let ops =
    Opstream.generate ~mix:{ p_insert = 0.0; p_delete = 0.0 } ~initial_pool:pool rng ~universe
      ~length:500 ~working_set:30
  in
  (* A query-only stream over a seeded pool can only talk about the pool. *)
  checkb "queries drawn from the seeded pool" true
    (Array.for_all
       (function Opstream.Query x -> Array.mem x pool | _ -> false)
       ops);
  checkb "oversized pool rejected" true
    (try
       ignore (Opstream.generate ~initial_pool:pool rng ~universe ~length:10 ~working_set:10);
       false
     with Invalid_argument _ -> true)

let test_apply_handle_uniform () =
  let rng = Rng.create 24 in
  let ops = Opstream.generate rng ~universe ~length:800 ~working_set:60 in
  (* The dynamic handle agrees with the direct consumer... *)
  let t = Lc_dynamic.Dynamic.create (Rng.create 25) ~universe () in
  let direct = Opstream.apply t (Rng.create 26) ops in
  let t' = Lc_dynamic.Dynamic.create (Rng.create 25) ~universe () in
  let via_handle =
    Opstream.apply_handle (Lc_dynamic.Dynamic.ops_handle t') (Rng.create 26) ops
  in
  checkb "dynamic handle = direct apply" true (direct = via_handle);
  (* ...and a static handle refuses the first update, by design. *)
  let keys = Keyset.random (Rng.create 27) ~universe ~n:64 in
  let h = Lc_perf.Select.ops_handle (Rng.create 28) ~universe ~keys "binary" in
  checkb "static handle rejects updates" true
    (try
       ignore (Opstream.apply_handle h (Rng.create 29) ops);
       false
     with Invalid_argument _ -> true)

let test_opstream_validates () =
  let rng = Rng.create 18 in
  let raised =
    try
      ignore
        (Opstream.generate ~mix:{ p_insert = 0.9; p_delete = 0.3 } rng ~universe ~length:10
           ~working_set:5);
      false
    with Invalid_argument _ -> true
  in
  checkb "mix must be sub-stochastic" true raised

let test_point_mass () =
  let pool = Keyset.random (Rng.create 31) ~universe ~n:64 in
  let hot_key =
    let rec find c = if Array.mem c pool then find (c + 1) else c in
    find 0
  in
  let length = 4_000 and hot_from = 2_000 and hot_share = 0.9 in
  let qmix = { Opstream.p_insert = 0.0; p_delete = 0.0 } in
  let mk seed =
    Opstream.point_mass ~mix:qmix ~initial_pool:pool (Rng.create seed) ~universe ~length
      ~working_set:64 ~hot_from ~hot_share ~hot_key
  in
  let ops = mk 5 in
  (* The base stream is drawn before the rewrite pass touches the rng,
     so the pre-offset prefix is exactly generate's output. *)
  let base =
    Opstream.generate ~mix:qmix ~initial_pool:pool (Rng.create 5) ~universe ~length
      ~working_set:64
  in
  checkb "prefix is exactly the base stream" true
    (Array.sub ops 0 hot_from = Array.sub base 0 hot_from);
  let hot_before = ref 0 and hot_after = ref 0 in
  Array.iteri
    (fun i op ->
      match op with
      | Opstream.Query x when x = hot_key ->
        if i < hot_from then incr hot_before else incr hot_after
      | _ -> ())
    ops;
  (* The pool fills the working set and excludes the hot key, so the
     crowd is silent until the offset... *)
  checki "silent before the offset" 0 !hot_before;
  (* ...and ~hot_share of post-offset queries after it. *)
  let f = float_of_int !hot_after /. float_of_int (length - hot_from) in
  checkb "~hot_share after the offset" true (f > 0.85 && f < 0.95);
  checkb "seed-deterministic" true (mk 5 = mk 5);
  checkb "distinct seeds differ" true (mk 5 <> mk 6);
  checkb "hot_from out of range rejected" true
    (try
       ignore
         (Opstream.point_mass ~mix:qmix ~initial_pool:pool (Rng.create 5) ~universe ~length
            ~working_set:64 ~hot_from:(length + 1) ~hot_share ~hot_key);
       false
     with Invalid_argument _ -> true);
  checkb "hot_share above one rejected" true
    (try
       ignore
         (Opstream.point_mass ~mix:qmix ~initial_pool:pool (Rng.create 5) ~universe ~length
            ~working_set:64 ~hot_from ~hot_share:1.5 ~hot_key);
       false
     with Invalid_argument _ -> true)

let test_shifting_zipf () =
  let n = 16 in
  let pool = Array.init n (fun i -> 100 + (7 * i)) in
  let shift_every = 1_600 in
  let mk () =
    Opstream.shifting_zipf ~exponent:1.2 (Rng.create 7) ~pool ~length:(4 * shift_every)
      ~shift_every
  in
  let ops = mk () in
  let ins, del, qry = Opstream.counts ops in
  checki "query-only" (4 * shift_every) qry;
  checki "no inserts" 0 ins;
  checki "no deletes" 0 del;
  checkb "queries drawn from the pool" true
    (Array.for_all (function Opstream.Query x -> Array.mem x pool | _ -> false) ops);
  (* The rank-to-key rotation moves the mode: segment s's most frequent
     key is pool.(s mod n). *)
  let hottest seg =
    let tally = Hashtbl.create 16 in
    for i = seg * shift_every to ((seg + 1) * shift_every) - 1 do
      match ops.(i) with
      | Opstream.Query x ->
        Hashtbl.replace tally x (1 + Option.value ~default:0 (Hashtbl.find_opt tally x))
      | _ -> ()
    done;
    fst (Hashtbl.fold (fun k v (bk, bv) -> if v > bv then (k, v) else (bk, bv)) tally (-1, 0))
  in
  let ok = ref true in
  for seg = 0 to 3 do
    if hottest seg <> pool.(seg mod n) then ok := false
  done;
  checkb "hot key walks the pool" true !ok;
  checkb "seed-deterministic" true (mk () = mk ());
  checkb "empty pool rejected" true
    (try
       ignore (Opstream.shifting_zipf (Rng.create 7) ~pool:[||] ~length:10 ~shift_every:5);
       false
     with Invalid_argument _ -> true)

let prop_random_any_size =
  QCheck.Test.make ~name:"random keyset: distinct, in-universe" ~count:100
    QCheck.(int_range 1 400)
    (fun n ->
      let rng = Rng.create (n * 3) in
      let keys = Keyset.random rng ~universe ~n in
      Array.length keys = n && all_distinct keys && in_universe keys)

let prop_clustered_sizes =
  QCheck.Test.make ~name:"clustered keyset: exact size" ~count:50
    QCheck.(pair (int_range 4 200) (int_range 1 10))
    (fun (n, clusters) ->
      QCheck.assume (clusters <= n);
      let rng = Rng.create (n + clusters) in
      let keys = Keyset.clustered rng ~universe ~n ~clusters in
      Array.length keys = n && all_distinct keys)

let () =
  Alcotest.run "lc_workload"
    [
      ( "keyset",
        [
          Alcotest.test_case "random" `Quick test_random;
          Alcotest.test_case "dense" `Quick test_dense;
          Alcotest.test_case "clustered" `Quick test_clustered;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "negatives" `Quick test_negatives;
        ] );
      ( "opstream",
        [
          Alcotest.test_case "mix fractions" `Quick test_opstream_mix;
          Alcotest.test_case "working-set bound" `Quick test_opstream_working_set;
          Alcotest.test_case "oracle consistency" `Quick test_opstream_oracle_consistency;
          Alcotest.test_case "apply counters" `Quick test_opstream_apply_counters;
          Alcotest.test_case "mix validation" `Quick test_opstream_validates;
          Alcotest.test_case "read-write mix" `Quick test_read_write_mix_fractions;
          Alcotest.test_case "counts" `Quick test_opstream_counts;
          Alcotest.test_case "split round-robin" `Quick test_opstream_split_round_robin;
          Alcotest.test_case "initial pool" `Quick test_opstream_initial_pool;
          Alcotest.test_case "uniform ops handle" `Quick test_apply_handle_uniform;
        ] );
      ( "time-varying",
        [
          Alcotest.test_case "point mass" `Quick test_point_mass;
          Alcotest.test_case "shifting zipf" `Quick test_shifting_zipf;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_random_any_size; prop_clustered_sizes ] );
    ]
